package core

// Golden tests: the tiny K2/K2 problem (A = B = a single edge, L the
// complete 2x2 candidate graph with unit weights, alpha=1, beta=2) is
// small enough to execute Listings 1 and 2 by hand; these tests pin
// the implementations to the hand-computed values.
//
// L's canonical edge order: e0=(0,0), e1=(0,1), e2=(1,0), e3=(1,1).
// S pairs e0<->e3 and e1<->e2 (both graphs' single edge overlaps under
// either perfect matching).

import (
	"math"
	"testing"

	"netalignmc/internal/matching"
)

func TestGoldenBPFirstIterations(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	type snap struct{ y, z []float64 }
	var snaps []snap
	p.BPAlign(BPOptions{
		Iterations: 2,
		Gamma:      0.99,
		Observer: func(iter int, y, z []float64) {
			snaps = append(snaps, snap{append([]float64(nil), y...), append([]float64(nil), z...)})
		},
	})
	if len(snaps) != 2 {
		t.Fatalf("observer called %d times", len(snaps))
	}
	// Iteration 1 by hand:
	//   F = bound_{0,2}(2*S + 0) = 2 on every nonzero.
	//   d = 1*w + F·e = 1 + 2 = 3 on every edge.
	//   othermaxcol(z0=0) = 0 (clamped), so y = 3; likewise z = 3.
	//   damping with gamma^1: y = 0.99*3 = 2.97.
	for e := 0; e < 4; e++ {
		if math.Abs(snaps[0].y[e]-2.97) > 1e-12 || math.Abs(snaps[0].z[e]-2.97) > 1e-12 {
			t.Fatalf("iter1 messages: y=%v z=%v, want all 2.97", snaps[0].y, snaps[0].z)
		}
	}
	// Iteration 2 by hand:
	//   S^(1) = (y+z-d)*S - F = (3+3-3) - 2 = 1 per nonzero, damped to 0.99.
	//   F = bound_{0,2}(2 + 0.99) = 2 (clamped).
	//   d = 3 again.
	//   othermax(2.97-vectors): every row/col has two edges at 2.97, so
	//   othermax = 2.97 everywhere; undamped y = z = 3 - 2.97 = 0.03.
	//   damping gamma^2 = 0.9801: y = 0.9801*0.03 + 0.0199*2.97.
	want := 0.9801*0.03 + (1-0.9801)*2.97
	for e := 0; e < 4; e++ {
		if math.Abs(snaps[1].y[e]-want) > 1e-12 {
			t.Fatalf("iter2 y[%d] = %.12f, want %.12f", e, snaps[1].y[e], want)
		}
	}
}

func TestGoldenBPNoDamping(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	var firstY []float64
	p.BPAlign(BPOptions{
		Iterations: 1,
		Damp:       DampNone,
		Observer: func(iter int, y, z []float64) {
			firstY = append([]float64(nil), y...)
		},
	})
	// Without damping the iteration-1 messages stay at exactly 3.
	for e := 0; e < 4; e++ {
		if firstY[e] != 3 {
			t.Fatalf("undamped y = %v, want all 3", firstY)
		}
	}
}

func TestGoldenMRFirstIteration(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	var gotUpper, gotObj float64
	var gotWbar []float64
	res := p.KlauAlign(MROptions{
		Iterations:   5,
		GapTolerance: 1e-12,
		Observer: func(iter int, wbar []float64, upper, obj float64) {
			if iter == 1 {
				gotWbar = append([]float64(nil), wbar...)
				gotUpper, gotObj = upper, obj
			}
		},
	})
	// Iteration 1 by hand (U=0):
	//   row weights = beta/2 * S = 1 per nonzero.
	//   each row of S has one nonzero; its singleton matching has
	//   value 1, so d = 1 on every edge and wbar = 1*1 + 1 = 2.
	for e := 0; e < 4; e++ {
		if gotWbar[e] != 2 {
			t.Fatalf("wbar = %v, want all 2", gotWbar)
		}
	}
	// x is a perfect matching: upper = wbar'x = 4; objective =
	// alpha*2 + beta/2 * 2 = 4. Upper == lower, so MR must detect
	// optimality at iteration 1.
	if gotUpper != 4 || gotObj != 4 {
		t.Fatalf("upper=%g obj=%g, want 4/4", gotUpper, gotObj)
	}
	if !res.Converged || res.ConvergedIter != 1 {
		t.Fatalf("MR did not detect the closed gap: %+v", res)
	}
	if res.Objective != 4 {
		t.Fatalf("final objective %g", res.Objective)
	}
}

func TestGoldenSMatrixPairs(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	perm := p.SPerm
	// The transpose permutation on the 4 symmetric entries must be an
	// involution with no fixed points (no diagonal entries).
	for k, pk := range perm {
		if perm[pk] != k {
			t.Fatalf("perm not involutive at %d", k)
		}
		if pk == k {
			t.Fatalf("fixed point %d implies a diagonal entry", k)
		}
	}
}

func TestGoldenObjectiveAgainstMatchers(t *testing.T) {
	// Every matcher must find a perfect matching here (weight 2), and
	// the alignment objective of any perfect matching is 4.
	p := tinyProblem(t, 1, 2)
	for name, m := range map[string]matching.Matcher{
		"exact":   matching.Exact,
		"approx":  matching.Approx,
		"greedy":  matching.Greedy,
		"suitor":  matching.Suitor,
		"auction": matching.NewAuctionMatcher(1e-9),
	} {
		tr := &Tracker{}
		obj, res, err := p.RoundHeuristic(p.L.W, m, 1, 1, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Card != 2 {
			t.Fatalf("%s: matched %d edges", name, res.Card)
		}
		if obj != 4 {
			t.Fatalf("%s: objective %g, want 4", name, obj)
		}
	}
}

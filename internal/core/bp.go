package core

import (
	"context"
	"math"
	"sync/atomic"

	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
	"netalignmc/internal/sparse"
	"netalignmc/internal/stats"
)

// BP step names, used by the Figure 7 per-step scaling study.
const (
	BPStepBoundF   = "boundF"   // Step 1: F = bound_{0,β}(βS + S^(k)T)
	BPStepComputeD = "computeD" // Step 2: d = αw + Fe
	BPStepOthermax = "othermax" // Step 3: othermax row/col updates
	BPStepUpdateS  = "updateS"  // Step 4: S^(k) = diag(y+z−d)·S − F
	BPStepDamping  = "damping"  // Step 5: geometric damping
	BPStepMatch    = "match"    // Step 6: rounding (possibly batched)
)

// Damping selects how BP iterates are blended with their predecessors
// (Section III-B: "We only describe one type of damping. See [13] for
// other variations.").
type Damping int

const (
	// DampPower blends with weight γ^k at iteration k (the paper's
	// choice; the blend weight decays so the iterates converge).
	DampPower Damping = iota
	// DampConstant blends with a fixed weight γ every iteration.
	DampConstant
	// DampNone applies no damping; the messages may oscillate, which
	// is why rounding every iterate and keeping the best still works.
	DampNone
)

// String returns the damping scheme name.
func (d Damping) String() string {
	switch d {
	case DampConstant:
		return "constant"
	case DampNone:
		return "none"
	default:
		return "power"
	}
}

// BPOptions configures the belief-propagation method (Listing 2).
type BPOptions struct {
	// Iterations is n_iter; the paper's scaling runs use 400 and note
	// 500–1000 is the useful maximum.
	Iterations int
	// Gamma is the damping base; under DampPower the iterates are
	// blended with weight γ^k at iteration k. The paper's experiments
	// use γ = 0.99.
	Gamma float64
	// Damp selects the damping scheme (default DampPower, the paper's).
	Damp Damping
	// Batch is the rounding batch size r of Section IV-C: iterate
	// vectors are collected and rounded together as concurrent tasks;
	// 1 rounds immediately (BP(batch=1)). Each iteration produces two
	// vectors (y and z), so a batch of r flushes every r/2 iterations.
	Batch int
	// Threads is the worker count (<= 0 means GOMAXPROCS).
	Threads int
	// Chunk is the dynamic-schedule chunk size (0 = 1000).
	Chunk int
	// Sched selects the scheduling policy for the S-indexed loops
	// (default Dynamic, the paper's choice); the scaling studies vary
	// it in place of the paper's NUMA memory-layout axis. Sched only
	// applies under PartitionChunked: the default balanced partition
	// replaces chunked scheduling entirely.
	Sched parallel.Schedule
	// Partition selects how the parallel loops split their index
	// spaces: PartitionBalanced (default) precomputes contiguous
	// per-worker ranges of near-equal nonzero count once per problem;
	// PartitionChunked restores the legacy chunked schedules. The
	// iterates and the result are bit-identical either way.
	Partition Partition
	// NoPool disables the per-run persistent worker pool, making every
	// parallel region spawn goroutines as earlier versions did. Output
	// is identical; the option exists for the scheduling studies and
	// as an escape hatch.
	NoPool bool
	// Rounding is the matcher used to round iterates; nil selects
	// exact matching, matching.Approx gives the paper's substitution.
	// Unlike MR, BP's iterate sequence is independent of this choice —
	// rounding only evaluates quality (Section VII).
	//
	// Deprecated: set Matcher instead. A non-nil Rounding still wins
	// for compatibility, but it forfeits the reusable matcher scratch
	// (the solver cannot see inside a func value), so the rounding
	// step allocates every iteration.
	Rounding matching.Matcher
	// Matcher declaratively selects the rounding matcher (the zero
	// value is exact matching, preserving the historical default).
	// The solver builds one reusable matcher per batch slot from it,
	// which is what makes steady-state rounding allocation-free.
	Matcher matching.MatcherSpec
	// FuseKernels fuses the othermax-subtraction and damping passes
	// into one edge-indexed sweep, and the S-update and S-damping
	// passes into a single S-indexed sweep — one read of S's nonzeros
	// per iteration instead of two. The arithmetic is evaluated in the
	// same order as the unfused path, so iterates are bit-identical.
	// Ignored (the unfused path runs) when Faults is set, since the
	// fault hooks target the per-step intermediate vectors. The
	// per-step timer then reports the fused sweeps under the othermax
	// and updateS names and records nothing under damping.
	FuseKernels bool
	// Workspace supplies reusable solver buffers; nil allocates a
	// private one for the solve. Handing the same workspace to
	// successive solves on same-shaped problems removes the per-solve
	// buffer allocations too. A workspace serves one solve at a time.
	Workspace *Workspace
	// TaskParallelOthermax computes othermaxrow and othermaxcol
	// concurrently, the reorganization sketched in the paper's
	// discussion ("the othermax functions could be computed
	// independently"). Off by default.
	TaskParallelOthermax bool
	// SkipFinalExact disables the final exact rounding of the best
	// heuristic (used by the scaling studies).
	SkipFinalExact bool
	// Timer, when non-nil, accumulates per-step wall time.
	Timer *stats.StepTimer
	// Trace records every rounded objective.
	Trace bool
	// WarmY and WarmZ, when non-nil, initialize the message vectors
	// instead of zeros. The steering workflow re-solves a problem
	// after editing L; transferring the previous solve's messages (see
	// TransferEdgeVector) lets the new run start near the old fixed
	// point. Lengths must equal |E_L|. Ignored when Resume is set.
	WarmY, WarmZ []float64
	// Observer, when non-nil, is called after each iteration's damping
	// with the iteration number and the damped message vectors (which
	// alias internal buffers — copy before retaining). It exists for
	// message inspection and for the golden tests that pin the
	// listing's arithmetic.
	Observer func(iter int, y, z []float64)

	// Resume, when non-nil, restores the solver state from a
	// checkpoint of a previous run on the same problem with the same
	// options; the run continues at iteration Resume.Iter+1 and is bit
	// identical to the uninterrupted run. The checkpoint is validated
	// against the problem before any state is copied.
	Resume *Checkpoint
	// CheckpointEvery, when positive with CheckpointFunc set, snapshots
	// the run every that many iterations (pending batched roundings are
	// flushed first so the snapshot's tracker is complete).
	CheckpointEvery int
	// CheckpointFunc receives each snapshot; returning an error stops
	// the run and surfaces through AlignResult.Err.
	CheckpointFunc func(*Checkpoint) error
	// GuardLimit is the numeric guard's message-magnitude explosion
	// threshold: 0 selects the default (1e100), negative disables the
	// guard entirely.
	GuardLimit float64
	// Faults, when non-nil, corrupts step outputs for robustness tests
	// (see internal/faults). Production runs leave it nil.
	Faults FaultInjector
}

func (o *BPOptions) defaults() BPOptions {
	opts := *o
	if opts.Iterations <= 0 {
		opts.Iterations = 100
	}
	if opts.Gamma <= 0 || opts.Gamma >= 1 {
		opts.Gamma = 0.99
	}
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	if opts.Chunk <= 0 {
		opts.Chunk = parallel.DefaultChunk
	}
	return opts
}

// BPAlign runs the belief-propagation message-passing method
// (Listing 2) to completion. Errors from the resilience options (a
// mismatched Resume checkpoint, a failing CheckpointFunc) are reported
// via AlignResult.Err.
//
// Deprecated: BPAlign is a thin wrapper over Problem.Align; new code
// should call Align with Options{Method: MethodBP}.
func (p *Problem) BPAlign(o BPOptions) *AlignResult {
	res, _ := p.Align(context.Background(), Options{Method: MethodBP, BP: o})
	return res
}

// BPAlignCtx runs the belief-propagation method under a context.
//
// Deprecated: BPAlignCtx is a thin wrapper over Problem.Align; new
// code should call Align with Options{Method: MethodBP}.
func (p *Problem) BPAlignCtx(ctx context.Context, o BPOptions) (*AlignResult, error) {
	return p.Align(ctx, Options{Method: MethodBP, BP: o})
}

// bpAlign runs the belief-propagation message-passing method
// (Listing 2) under a context. Messages y, z live on the edges of L;
// the message matrix S^(k) lives on the nonzeros of S. Each iteration
// bounds the overlap messages into F, folds them into the edge
// likelihoods d, applies the othermax exclusion updates, rescales
// S^(k), damps all three with weight γ^k, and rounds the damped y and
// z iterates to matchings whose objectives are tracked; the best
// heuristic is exact-rounded at the end.
//
// Cancelling the context (or hitting its deadline) stops the run
// mid-iteration in bounded time and returns the best matching found so
// far with AlignResult.Stopped set to StopCancelled or StopDeadline.
// The numeric guard checks every iteration's damped messages for
// NaN/Inf and magnitude explosion; a failing iteration is rolled back
// to the last good state with tightened damping, and a recurring
// failure stops the run with StopNumerics and the best valid matching.
// The returned error (also recorded on AlignResult.Err) reports
// resilience-option failures; a cancelled or numerics-stopped run is
// not an error.
//
// All buffers come from the workspace and every kernel closure is
// created once before the loop, so steady-state iterations perform no
// heap allocations at Threads=1 (at higher thread counts the parallel
// constructs spawn goroutines, which inherently allocate).
func (p *Problem) bpAlign(ctx context.Context, o BPOptions, po PipelineOptions, ro ReorderOptions) (*AlignResult, error) {
	opts := o.defaults()
	threads, chunk := opts.Threads, opts.Chunk
	sched := opts.Sched
	timer := opts.Timer
	nnz := p.S.NNZ()
	mEL := p.L.NumEdges()
	total := parallel.Threads(threads)
	serial := total == 1

	tr := &Tracker{Trace: opts.Trace}
	guard := newNumericGuard(opts.GuardLimit)

	// The reordered storage view of S (nil = canonical order). Every
	// kernel below reads S through the view's arrays; edge-indexed
	// vectors and all outputs stay canonical.
	view, err := p.reorderViewFor(ro)
	if err != nil {
		res := p.emptyResult()
		res.Err = err
		return res, err
	}

	// Pipelined rounding engages only for parallel, fault-free runs;
	// everything else keeps the barrier path (same bits either way).
	pipelined := po.Enabled && !serial && opts.Faults == nil
	pcfg := po.withDefaults(total)
	nSlots := opts.Batch + 1
	if pipelined {
		nSlots = pcfg.Depth * (opts.Batch + 1)
	}

	ws := opts.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.ensureBP(mEL, nnz)
	key, mk := matcherFactory(opts.Rounding, opts.Matcher)
	if err := ws.ensureRound(p, key, mk, nSlots); err != nil {
		res := p.emptyResult()
		res.Err = err
		return res, err
	}
	// The run's parallel-region dispatcher: a persistent worker pool
	// (created once, parked between regions) plus the per-problem
	// nnz-balanced partitions cached in the workspace. With the
	// pipeline on, the sweeps run on the workers the collector does
	// not use; every dispatched loop is thread-count invariant, so
	// shrinking the sweep budget changes no bits.
	execThreads := threads
	if pipelined {
		execThreads = total - pcfg.MatchWorkers
		if execThreads < 1 {
			execThreads = 1
		}
	}
	e := newExec(p, ws, execThreads, chunk, sched, opts.Partition, opts.NoPool, view)
	defer e.close()

	y, z := ws.y, ws.z
	yPrev, zPrev := ws.yPrev, ws.zPrev
	sk, skPrev := ws.sk, ws.skPrev
	d, om, om2, f := ws.d, ws.om, ws.om2, ws.f
	yu, zu := ws.yu, ws.zu
	zeroFloat64(y, z, yPrev, zPrev, sk, skPrev)
	gammaK := 1.0
	startIter := 1
	if opts.Resume != nil {
		if err := opts.Resume.Validate(p, "bp"); err != nil {
			res := p.emptyResult()
			res.Err = err
			return res, err
		}
		copy(yPrev, opts.Resume.Y)
		copy(zPrev, opts.Resume.Z)
		// Checkpoints carry SK in canonical nonzero order; gather it
		// into this run's storage order (identity without a view), so
		// resuming under different reorder settings is bit-identical.
		view.gather(skPrev, opts.Resume.SK)
		gammaK = opts.Resume.GammaK
		guard.tighten = opts.Resume.Tighten
		if guard.tighten == 0 {
			guard.tighten = 1
		}
		guard.failures = opts.Resume.Failures
		opts.Resume.restoreTracker(p, tr)
		startIter = opts.Resume.Iter + 1
	} else {
		if len(opts.WarmY) == mEL {
			copy(yPrev, opts.WarmY)
		}
		if len(opts.WarmZ) == mEL {
			copy(zPrev, opts.WarmZ)
		}
	}

	// Last-good snapshots for the numeric guard's rollback.
	goodY, goodZ, goodSK := ws.goodY, ws.goodZ, ws.goodSK
	copy(goodY, yPrev)
	copy(goodZ, zPrev)
	copy(goodSK, skPrev)
	goodGammaK := gammaK

	sVal := p.S.Val
	perm := p.SPerm
	sRow := p.SRow
	beta := p.Beta
	w := p.L.W
	ptr := p.S.Ptr
	alpha := p.Alpha
	// With a reorder view, the nnz-indexed arrays switch to the
	// reordered storage (perm and sRow are pre-composed so kernels
	// keep indexing canonical edge vectors), and the row loops walk
	// rows in storage order with rowOf mapping back to the canonical
	// row for the d/w accesses.
	var rowOf []int
	if view != nil {
		sVal, perm, sRow, ptr = view.s.Val, view.perm, view.sRow, view.s.Ptr
		rowOf = view.rows
	}

	fused := opts.FuseKernels && opts.Faults == nil

	// g is the current iteration's damping weight, set before the
	// damping (or fused) sweeps run; the kernels read it by capture.
	var g float64

	// The kernel closures are hoisted out of the iteration loop: a
	// closure handed to the parallel constructs escapes (the worker
	// goroutines capture it), so creating one per iteration would
	// heap-allocate on the hot path. They capture the slice-header
	// variables, so the post-damping buffer swaps are visible to them.

	// Step 1: F = bound_{0,β}(β·S + S^(k−1)ᵀ). The transpose is
	// realized by pulling through the permutation with no intermediate
	// write.
	boundF := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			f[k] = sparse.Bound(beta*sVal[k]+skPrev[perm[k]], 0, beta)
		}
	}
	// Step 2: d = αw + F·e (row sums of F over S's pattern). Each row
	// keeps its within-row summation order under reordering, so every
	// d entry is bit-identical; only which worker computes it moves.
	computeD := func(lo, hi int) {
		for e := lo; e < hi; e++ {
			s := 0.0
			for k := ptr[e]; k < ptr[e+1]; k++ {
				s += f[k]
			}
			r := e
			if rowOf != nil {
				r = rowOf[e]
			}
			d[r] = alpha*w[r] + s
		}
	}
	// Step 3 tail: y = d − othermaxcol(z⁽ᵏ⁻¹⁾), z = d − othermaxrow(y⁽ᵏ⁻¹⁾).
	othermaxEdges := func(lo, hi int) {
		for e := lo; e < hi; e++ {
			y[e] = d[e] - om2[e]
			z[e] = d[e] - om[e]
		}
	}
	// Step 4: S^(k) = diag(y + z − d)·S − F (row rescale minus F).
	updateS := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			r := sRow[k]
			sk[k] = (y[r]+z[r]-d[r])*sVal[k] - f[k]
		}
	}
	// Step 5: damping against the previous iterates. The guard's
	// tighten factor (< 1 after a numeric rollback) is already folded
	// into g so a diverging message sequence moves more slowly.
	dampEdges := func(lo, hi int) {
		for e := lo; e < hi; e++ {
			y[e] = g*y[e] + (1-g)*yPrev[e]
			z[e] = g*z[e] + (1-g)*zPrev[e]
		}
	}
	dampS := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			sk[k] = g*sk[k] + (1-g)*skPrev[k]
		}
	}
	// Fused sweeps: the same float operations in the same order as the
	// unfused pairs above, evaluated in one pass over each index
	// space. The undamped values (yu, zu) are kept because the S
	// update consumes them.
	fusedEdges := func(lo, hi int) {
		for e := lo; e < hi; e++ {
			yv := d[e] - om2[e]
			zv := d[e] - om[e]
			yu[e] = yv
			zu[e] = zv
			y[e] = g*yv + (1-g)*yPrev[e]
			z[e] = g*zv + (1-g)*zPrev[e]
		}
	}
	fusedS := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			r := sRow[k]
			t := (yu[r]+zu[r]-d[r])*sVal[k] - f[k]
			sk[k] = g*t + (1-g)*skPrev[k]
		}
	}
	// The othermax scans read yPrev/zPrev through capture so the
	// post-damping swaps stay visible; dispatched over L's vertex sets
	// with the degree-balanced partitions.
	omRowsBody := func(lo, hi int) { othermaxRowsRange(om, yPrev, p.L, lo, hi) }
	omColsBody := func(lo, hi int) { othermaxColsRange(om2, zPrev, p.L, lo, hi) }
	omTasks := []func(int){
		func(t int) { othermaxColsInto(om2, zPrev, p.L, t, chunk) },
		func(t int) { othermaxRowsInto(om, yPrev, p.L, t, chunk) },
	}
	othermaxScan := func() {
		if opts.TaskParallelOthermax {
			e.runTasks(omTasks)
			return
		}
		e.forLCols(p.L.NB, omColsBody)
		e.forLRows(p.L.NA, omRowsBody)
	}
	step1 := func() { e.forNNZ(ctx, nnz, boundF) }
	step2 := func() { e.forSRows(ctx, mEL, computeD) }
	step3 := func() {
		othermaxScan()
		e.forEdges(mEL, othermaxEdges)
	}
	step4 := func() { e.forNNZ(ctx, nnz, updateS) }
	step5 := func() {
		e.forEdges(mEL, dampEdges)
		e.forNNZ(ctx, nnz, dampS)
	}
	step3Fused := func() {
		othermaxScan()
		e.forEdges(mEL, fusedEdges)
	}
	step4Fused := func() { e.forNNZ(ctx, nnz, fusedS) }

	// Pending rounding slots (the batch) and their parallel tasks.
	pendLen := 0
	var numericEvents atomic.Int64

	// With the pipeline on, batches round on the collector goroutine
	// while the loop sweeps ahead; slots then come from the ring's
	// current group instead of the workspace's flat prefix.
	var pipe *roundingPipeline
	if pipelined {
		work := func(s *roundSlot) {
			if !finiteVector(s.heur) {
				numericEvents.Add(1)
				return
			}
			p.roundSlotRun(s, s.threads)
		}
		pipe = newRoundingPipeline(ctx, tr, timer, ws.slots[:nSlots], opts.Batch+1,
			pcfg, total, BPStepMatch, StepMatchOverlap, work)
		defer pipe.close()
	}
	slots := ws.slots
	if pipe != nil {
		slots = pipe.cur.slots
	}

	slotTasks := make([]func(int), opts.Batch+1)
	for i := range slotTasks {
		s := ws.slots[i]
		slotTasks[i] = func(taskThreads int) {
			s.ok = false
			// A corrupted (non-finite) heuristic copy is a numeric
			// fault: skip the rounding — the matcher and objective
			// would only launder the NaN — and let the guard account
			// for it after the flush.
			if !finiteVector(s.heur) {
				numericEvents.Add(1)
				return
			}
			p.roundSlotRun(s, taskThreads)
		}
	}
	flushBody := func() {
		if serial {
			for i := 0; i < pendLen; i++ {
				s := ws.slots[i]
				if !finiteVector(s.heur) {
					numericEvents.Add(1)
					continue
				}
				p.roundSlotRun(s, 1)
				tr.Offer(s.iter, s.obj, &s.res, s.heur)
			}
			pendLen = 0
			return
		}
		// Each task is one matching problem; with T threads and r
		// tasks each matching gets max(1, T/r) threads, the paper's
		// nested-parallelism scheme. Offer the results in batch order
		// after the barrier: task scheduling must not decide objective
		// ties, or the selected matching (and a checkpointed resume)
		// would vary run to run.
		e.runTasksCtx(ctx, slotTasks[:pendLen])
		for i := 0; i < pendLen; i++ {
			s := ws.slots[i]
			if s.ok {
				tr.Offer(s.iter, s.obj, &s.res, s.heur)
			}
		}
		pendLen = 0
	}
	flush := func() {
		if pendLen == 0 {
			return
		}
		if pipe != nil {
			pipe.submit(pendLen)
			slots = pipe.cur.slots
			pendLen = 0
			return
		}
		timer.Time(BPStepMatch, flushBody)
	}

	stopped := StopMaxIter
	var runErr error
	lastIter := startIter - 1

	iter := startIter
loop:
	for iter <= opts.Iterations {
		if err := ctx.Err(); err != nil {
			stopped = stopReasonForCtx(err)
			break
		}
		timer.Time(BPStepBoundF, step1)
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepBoundF, iter, f)
		}

		timer.Time(BPStepComputeD, step2)
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepComputeD, iter, d)
		}

		// The damping weight for this iteration is fixed before the
		// sweeps so the fused kernels can blend as they write.
		gammaK *= opts.Gamma
		switch opts.Damp {
		case DampConstant:
			g = opts.Gamma
		case DampNone:
			g = 1
		default:
			g = gammaK
		}
		g *= guard.tighten

		if fused {
			timer.Time(BPStepOthermax, step3Fused)
			timer.Time(BPStepUpdateS, step4Fused)
		} else {
			timer.Time(BPStepOthermax, step3)
			if opts.Faults != nil {
				opts.Faults.CorruptVector(BPStepOthermax, iter, y)
			}
			timer.Time(BPStepUpdateS, step4)
			if opts.Faults != nil {
				opts.Faults.CorruptVector(BPStepUpdateS, iter, sk)
			}
			timer.Time(BPStepDamping, step5)
		}
		y, yPrev = yPrev, y
		z, zPrev = zPrev, z
		sk, skPrev = skPrev, sk
		// After the swaps, *Prev hold iteration k's damped state.
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepDamping, iter, yPrev)
		}

		// A cancelled step leaves partially written vectors; bail out
		// before the guard or the tracker can look at them.
		if err := ctx.Err(); err != nil {
			stopped = stopReasonForCtx(err)
			break
		}

		// Numeric guard: one scan over the damped state catches NaN/Inf
		// or explosion introduced by any of steps 1–5 (a bad F entry
		// propagates through d, y/z and S^(k)). On failure, roll back
		// to the last good iterate and retry with tightened damping;
		// stop with StopNumerics when the failure recurs.
		if !guard.ok(threads, yPrev, zPrev, skPrev) {
			if guard.trip() {
				copy(yPrev, goodY)
				copy(zPrev, goodZ)
				copy(skPrev, goodSK)
				gammaK = goodGammaK
				continue
			}
			copy(yPrev, goodY)
			copy(zPrev, goodZ)
			copy(skPrev, goodSK)
			stopped = StopNumerics
			break
		}
		guard.clean()
		copy(goodY, yPrev)
		copy(goodZ, zPrev)
		copy(goodSK, skPrev)
		goodGammaK = gammaK

		if opts.Observer != nil {
			opts.Observer(iter, yPrev, zPrev)
		}

		// Step 6: copy the damped y and z iterates into the next two
		// batch slots; flush when the batch is full.
		sy := slots[pendLen]
		sy.iter = iter
		sy.heur = growFloat64(sy.heur, mEL)
		copy(sy.heur, yPrev)
		pendLen++
		sz := slots[pendLen]
		sz.iter = iter
		sz.heur = growFloat64(sz.heur, mEL)
		copy(sz.heur, zPrev)
		pendLen++
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepMatch, iter, sy.heur)
			opts.Faults.CorruptVector(BPStepMatch, iter, sz.heur)
		}
		if pendLen >= opts.Batch {
			flush()
			// Corrupted heuristics skipped during the flush count as
			// guard failures so a recurring match-step fault escalates
			// to StopNumerics instead of silently dropping roundings.
			for n := numericEvents.Swap(0); n > 0; n-- {
				if !guard.trip() {
					stopped = StopNumerics
					lastIter = iter
					break loop
				}
			}
		}
		lastIter = iter

		if opts.CheckpointEvery > 0 && opts.CheckpointFunc != nil && iter%opts.CheckpointEvery == 0 {
			flush() // the snapshot's tracker must cover every iterate so far
			if pipe != nil {
				pipe.drain()
			}
			ck := &Checkpoint{
				Method:   "bp",
				Iter:     iter,
				GammaK:   gammaK,
				Tighten:  guard.tighten,
				Failures: guard.failures,
				Y:        append([]float64(nil), yPrev...),
				Z:        append([]float64(nil), zPrev...),
				// SK is serialized in canonical nonzero order regardless
				// of the run's storage layout, so checkpoint bytes (and
				// resumes) are identical across reorder settings.
				SK: view.canonicalCopy(skPrev),
			}
			ck.fingerprint(p)
			ck.captureTracker(tr)
			if err := opts.CheckpointFunc(ck); err != nil {
				runErr = err
				break
			}
		}
		iter++
	}

	cancelled := stopped == StopCancelled || stopped == StopDeadline
	if !cancelled {
		flush()
	}
	var pipeReport *PipelineReport
	if pipe != nil {
		// Wait for in-flight batches (their offers land in submit order),
		// then retire the collector before the final exact rounding.
		pipe.drain()
		pipe.close()
		pipeReport = pipe.report()
	}

	var out *AlignResult
	if cancelled && !tr.HasBest() {
		// Cancelled before any rounding completed: return an empty
		// matching rather than paying for an exact solve now.
		out = p.emptyResult()
	} else {
		var err error
		out, err = p.finishResult(tr, threads, opts.SkipFinalExact || cancelled)
		if err != nil && runErr == nil {
			runErr = err
		}
	}
	out.Iterations = lastIter
	out.Stopped = stopped
	out.NumericFailures = guard.failures
	out.Pipeline = pipeReport
	out.Err = runErr
	if opts.Trace {
		out.ObjectiveTrace = append([]float64(nil), tr.Objective...)
	}
	return out, runErr
}

// bpSanityCheck verifies finite messages; used in tests via export.
func bpSanityCheck(vals []float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
	"netalignmc/internal/sparse"
	"netalignmc/internal/stats"
)

// BP step names, used by the Figure 7 per-step scaling study.
const (
	BPStepBoundF   = "boundF"   // Step 1: F = bound_{0,β}(βS + S^(k)T)
	BPStepComputeD = "computeD" // Step 2: d = αw + Fe
	BPStepOthermax = "othermax" // Step 3: othermax row/col updates
	BPStepUpdateS  = "updateS"  // Step 4: S^(k) = diag(y+z−d)·S − F
	BPStepDamping  = "damping"  // Step 5: geometric damping
	BPStepMatch    = "match"    // Step 6: rounding (possibly batched)
)

// Damping selects how BP iterates are blended with their predecessors
// (Section III-B: "We only describe one type of damping. See [13] for
// other variations.").
type Damping int

const (
	// DampPower blends with weight γ^k at iteration k (the paper's
	// choice; the blend weight decays so the iterates converge).
	DampPower Damping = iota
	// DampConstant blends with a fixed weight γ every iteration.
	DampConstant
	// DampNone applies no damping; the messages may oscillate, which
	// is why rounding every iterate and keeping the best still works.
	DampNone
)

// String returns the damping scheme name.
func (d Damping) String() string {
	switch d {
	case DampConstant:
		return "constant"
	case DampNone:
		return "none"
	default:
		return "power"
	}
}

// BPOptions configures the belief-propagation method (Listing 2).
type BPOptions struct {
	// Iterations is n_iter; the paper's scaling runs use 400 and note
	// 500–1000 is the useful maximum.
	Iterations int
	// Gamma is the damping base; under DampPower the iterates are
	// blended with weight γ^k at iteration k. The paper's experiments
	// use γ = 0.99.
	Gamma float64
	// Damp selects the damping scheme (default DampPower, the paper's).
	Damp Damping
	// Batch is the rounding batch size r of Section IV-C: iterate
	// vectors are collected and rounded together as concurrent tasks;
	// 1 rounds immediately (BP(batch=1)). Each iteration produces two
	// vectors (y and z), so a batch of r flushes every r/2 iterations.
	Batch int
	// Threads is the worker count (<= 0 means GOMAXPROCS).
	Threads int
	// Chunk is the dynamic-schedule chunk size (0 = 1000).
	Chunk int
	// Sched selects the scheduling policy for the S-indexed loops
	// (default Dynamic, the paper's choice); the scaling studies vary
	// it in place of the paper's NUMA memory-layout axis.
	Sched parallel.Schedule
	// Rounding is the matcher used to round iterates; nil selects
	// exact matching, matching.Approx gives the paper's substitution.
	// Unlike MR, BP's iterate sequence is independent of this choice —
	// rounding only evaluates quality (Section VII).
	Rounding matching.Matcher
	// TaskParallelOthermax computes othermaxrow and othermaxcol
	// concurrently, the reorganization sketched in the paper's
	// discussion ("the othermax functions could be computed
	// independently"). Off by default.
	TaskParallelOthermax bool
	// SkipFinalExact disables the final exact rounding of the best
	// heuristic (used by the scaling studies).
	SkipFinalExact bool
	// Timer, when non-nil, accumulates per-step wall time.
	Timer *stats.StepTimer
	// Trace records every rounded objective.
	Trace bool
	// WarmY and WarmZ, when non-nil, initialize the message vectors
	// instead of zeros. The steering workflow re-solves a problem
	// after editing L; transferring the previous solve's messages (see
	// TransferEdgeVector) lets the new run start near the old fixed
	// point. Lengths must equal |E_L|. Ignored when Resume is set.
	WarmY, WarmZ []float64
	// Observer, when non-nil, is called after each iteration's damping
	// with the iteration number and the damped message vectors (which
	// alias internal buffers — copy before retaining). It exists for
	// message inspection and for the golden tests that pin the
	// listing's arithmetic.
	Observer func(iter int, y, z []float64)

	// Resume, when non-nil, restores the solver state from a
	// checkpoint of a previous run on the same problem with the same
	// options; the run continues at iteration Resume.Iter+1 and is bit
	// identical to the uninterrupted run. The checkpoint is validated
	// against the problem before any state is copied.
	Resume *Checkpoint
	// CheckpointEvery, when positive with CheckpointFunc set, snapshots
	// the run every that many iterations (pending batched roundings are
	// flushed first so the snapshot's tracker is complete).
	CheckpointEvery int
	// CheckpointFunc receives each snapshot; returning an error stops
	// the run and surfaces through AlignResult.Err.
	CheckpointFunc func(*Checkpoint) error
	// GuardLimit is the numeric guard's message-magnitude explosion
	// threshold: 0 selects the default (1e100), negative disables the
	// guard entirely.
	GuardLimit float64
	// Faults, when non-nil, corrupts step outputs for robustness tests
	// (see internal/faults). Production runs leave it nil.
	Faults FaultInjector
}

func (o *BPOptions) defaults() BPOptions {
	opts := *o
	if opts.Iterations <= 0 {
		opts.Iterations = 100
	}
	if opts.Gamma <= 0 || opts.Gamma >= 1 {
		opts.Gamma = 0.99
	}
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	if opts.Rounding == nil {
		opts.Rounding = matching.Exact
	}
	if opts.Chunk <= 0 {
		opts.Chunk = parallel.DefaultChunk
	}
	return opts
}

// BPAlign runs the belief-propagation message-passing method
// (Listing 2) to completion; it is BPAlignCtx without cancellation.
// Errors from the resilience options (a mismatched Resume checkpoint,
// a failing CheckpointFunc) are reported via AlignResult.Err.
func (p *Problem) BPAlign(o BPOptions) *AlignResult {
	res, _ := p.BPAlignCtx(context.Background(), o)
	return res
}

// BPAlignCtx runs the belief-propagation message-passing method
// (Listing 2) under a context. Messages y, z live on the edges of L;
// the message matrix S^(k) lives on the nonzeros of S. Each iteration
// bounds the overlap messages into F, folds them into the edge
// likelihoods d, applies the othermax exclusion updates, rescales
// S^(k), damps all three with weight γ^k, and rounds the damped y and
// z iterates to matchings whose objectives are tracked; the best
// heuristic is exact-rounded at the end.
//
// Cancelling the context (or hitting its deadline) stops the run
// mid-iteration in bounded time and returns the best matching found so
// far with AlignResult.Stopped set to StopCancelled or StopDeadline.
// The numeric guard checks every iteration's damped messages for
// NaN/Inf and magnitude explosion; a failing iteration is rolled back
// to the last good state with tightened damping, and a recurring
// failure stops the run with StopNumerics and the best valid matching.
// The returned error (also recorded on AlignResult.Err) reports
// resilience-option failures; a cancelled or numerics-stopped run is
// not an error.
func (p *Problem) BPAlignCtx(ctx context.Context, o BPOptions) (*AlignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts := o.defaults()
	threads, chunk := opts.Threads, opts.Chunk
	sched := opts.Sched
	timer := opts.Timer
	nnz := p.S.NNZ()
	mEL := p.L.NumEdges()

	tr := &Tracker{Trace: opts.Trace}
	guard := newNumericGuard(opts.GuardLimit)

	y := make([]float64, mEL)
	z := make([]float64, mEL)
	yPrev := make([]float64, mEL)
	zPrev := make([]float64, mEL)
	sk := make([]float64, nnz)
	skPrev := make([]float64, nnz)
	gammaK := 1.0
	startIter := 1
	if opts.Resume != nil {
		if err := opts.Resume.Validate(p, "bp"); err != nil {
			res := p.emptyResult()
			res.Err = err
			return res, err
		}
		copy(yPrev, opts.Resume.Y)
		copy(zPrev, opts.Resume.Z)
		copy(skPrev, opts.Resume.SK)
		gammaK = opts.Resume.GammaK
		guard.tighten = opts.Resume.Tighten
		if guard.tighten == 0 {
			guard.tighten = 1
		}
		guard.failures = opts.Resume.Failures
		opts.Resume.restoreTracker(p, tr)
		startIter = opts.Resume.Iter + 1
	} else {
		if len(opts.WarmY) == mEL {
			copy(yPrev, opts.WarmY)
		}
		if len(opts.WarmZ) == mEL {
			copy(zPrev, opts.WarmZ)
		}
	}
	d := make([]float64, mEL)
	om := make([]float64, mEL)  // othermax scratch (row)
	om2 := make([]float64, mEL) // othermax scratch (col)
	f := make([]float64, nnz)

	// Last-good snapshots for the numeric guard's rollback.
	goodY := append([]float64(nil), yPrev...)
	goodZ := append([]float64(nil), zPrev...)
	goodSK := append([]float64(nil), skPrev...)
	goodGammaK := gammaK

	sVal := p.S.Val
	perm := p.SPerm
	sRow := p.SRow
	beta := p.Beta
	w := p.L.W

	// batch holds pending iterate copies awaiting rounding.
	type pending struct {
		iter int
		heur []float64
	}
	var batch []pending
	var numericEvents atomic.Int64
	var roundErrMu sync.Mutex
	var roundErr error
	flush := func() {
		if len(batch) == 0 {
			return
		}
		items := batch
		batch = nil
		timer.Time(BPStepMatch, func() {
			type rounded struct {
				obj float64
				res *matching.Result
				ok  bool
			}
			out := make([]rounded, len(items))
			tasks := make([]func(int), len(items))
			for i := range items {
				i := i
				it := items[i]
				tasks[i] = func(taskThreads int) {
					// A corrupted (non-finite) heuristic copy is a
					// numeric fault: skip the rounding — the matcher
					// and objective would only launder the NaN — and
					// let the guard account for it after the flush.
					if !finiteVector(it.heur) {
						numericEvents.Add(1)
						return
					}
					obj, res, err := p.RoundHeuristic(it.heur, opts.Rounding, taskThreads, it.iter, nil)
					if err != nil {
						roundErrMu.Lock()
						if roundErr == nil {
							roundErr = err
						}
						roundErrMu.Unlock()
						return
					}
					out[i] = rounded{obj, res, true}
				}
			}
			// Each task is one matching problem; with T threads and r
			// tasks each matching gets max(1, T/r) threads, the
			// paper's nested-parallelism scheme.
			parallel.TasksCtx(ctx, threads, tasks)
			// Offer the results in batch order after the barrier:
			// task scheduling must not decide objective ties, or the
			// selected matching (and a checkpointed resume) would
			// vary run to run.
			for i, it := range items {
				if out[i].ok {
					tr.Offer(it.iter, out[i].obj, out[i].res, it.heur)
				}
			}
		})
	}

	stopped := StopMaxIter
	var runErr error
	lastIter := startIter - 1

	iter := startIter
loop:
	for iter <= opts.Iterations {
		if err := ctx.Err(); err != nil {
			stopped = stopReasonForCtx(err)
			break
		}
		// Step 1: F = bound_{0,β}(β·S + S^(k−1)ᵀ). The transpose is
		// realized by pulling through the permutation with no
		// intermediate write.
		timer.Time(BPStepBoundF, func() {
			sched.ForCtx(ctx, nnz, threads, chunk, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					f[k] = sparse.Bound(beta*sVal[k]+skPrev[perm[k]], 0, beta)
				}
			})
		})
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepBoundF, iter, f)
		}

		// Step 2: d = αw + F·e (row sums of F over S's pattern).
		timer.Time(BPStepComputeD, func() {
			ptr := p.S.Ptr
			alpha := p.Alpha
			sched.ForCtx(ctx, mEL, threads, chunk, func(lo, hi int) {
				for e := lo; e < hi; e++ {
					s := 0.0
					for k := ptr[e]; k < ptr[e+1]; k++ {
						s += f[k]
					}
					d[e] = alpha*w[e] + s
				}
			})
		})
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepComputeD, iter, d)
		}

		// Step 3: othermax. y = d − othermaxcol(z⁽ᵏ⁻¹⁾),
		// z = d − othermaxrow(y⁽ᵏ⁻¹⁾).
		timer.Time(BPStepOthermax, func() {
			if opts.TaskParallelOthermax {
				parallel.Tasks(threads, []func(int){
					func(t int) { othermaxColsInto(om2, zPrev, p.L, t, chunk) },
					func(t int) { othermaxRowsInto(om, yPrev, p.L, t, chunk) },
				})
			} else {
				othermaxColsInto(om2, zPrev, p.L, threads, chunk)
				othermaxRowsInto(om, yPrev, p.L, threads, chunk)
			}
			parallel.ForStatic(mEL, threads, func(lo, hi int) {
				for e := lo; e < hi; e++ {
					y[e] = d[e] - om2[e]
					z[e] = d[e] - om[e]
				}
			})
		})
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepOthermax, iter, y)
		}

		// Step 4: S^(k) = diag(y + z − d)·S − F (row rescale minus F).
		timer.Time(BPStepUpdateS, func() {
			sched.ForCtx(ctx, nnz, threads, chunk, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					r := sRow[k]
					sk[k] = (y[r]+z[r]-d[r])*sVal[k] - f[k]
				}
			})
		})
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepUpdateS, iter, sk)
		}

		// Step 5: damping against the previous iterates; the damped
		// values become both the output of this iteration and the next
		// iteration's "previous" state. The guard's tighten factor
		// (< 1 after a numeric rollback) shrinks the blend weight so a
		// diverging message sequence moves more slowly.
		gammaK *= opts.Gamma
		timer.Time(BPStepDamping, func() {
			var g float64
			switch opts.Damp {
			case DampConstant:
				g = opts.Gamma
			case DampNone:
				g = 1
			default:
				g = gammaK
			}
			g *= guard.tighten
			parallel.ForStatic(mEL, threads, func(lo, hi int) {
				for e := lo; e < hi; e++ {
					y[e] = g*y[e] + (1-g)*yPrev[e]
					z[e] = g*z[e] + (1-g)*zPrev[e]
				}
			})
			sched.ForCtx(ctx, nnz, threads, chunk, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					sk[k] = g*sk[k] + (1-g)*skPrev[k]
				}
			})
			y, yPrev = yPrev, y
			z, zPrev = zPrev, z
			sk, skPrev = skPrev, sk
			// After the swaps, *Prev hold iteration k's damped state.
		})
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepDamping, iter, yPrev)
		}

		// A cancelled step leaves partially written vectors; bail out
		// before the guard or the tracker can look at them.
		if err := ctx.Err(); err != nil {
			stopped = stopReasonForCtx(err)
			break
		}

		// Numeric guard: one scan over the damped state catches NaN/Inf
		// or explosion introduced by any of steps 1–5 (a bad F entry
		// propagates through d, y/z and S^(k)). On failure, roll back
		// to the last good iterate and retry with tightened damping;
		// stop with StopNumerics when the failure recurs.
		if !guard.ok(threads, yPrev, zPrev, skPrev) {
			if guard.trip() {
				copy(yPrev, goodY)
				copy(zPrev, goodZ)
				copy(skPrev, goodSK)
				gammaK = goodGammaK
				continue
			}
			copy(yPrev, goodY)
			copy(zPrev, goodZ)
			copy(skPrev, goodSK)
			stopped = StopNumerics
			break
		}
		guard.clean()
		copy(goodY, yPrev)
		copy(goodZ, zPrev)
		copy(goodSK, skPrev)
		goodGammaK = gammaK

		if opts.Observer != nil {
			opts.Observer(iter, yPrev, zPrev)
		}

		// Step 6: round y and z (batched).
		heurY := append([]float64(nil), yPrev...)
		heurZ := append([]float64(nil), zPrev...)
		if opts.Faults != nil {
			opts.Faults.CorruptVector(BPStepMatch, iter, heurY)
			opts.Faults.CorruptVector(BPStepMatch, iter, heurZ)
		}
		batch = append(batch, pending{iter, heurY}, pending{iter, heurZ})
		if len(batch) >= opts.Batch {
			flush()
			// Corrupted heuristics skipped during the flush count as
			// guard failures so a recurring match-step fault escalates
			// to StopNumerics instead of silently dropping roundings.
			for n := numericEvents.Swap(0); n > 0; n-- {
				if !guard.trip() {
					stopped = StopNumerics
					lastIter = iter
					break loop
				}
			}
		}
		lastIter = iter

		if opts.CheckpointEvery > 0 && opts.CheckpointFunc != nil && iter%opts.CheckpointEvery == 0 {
			flush() // the snapshot's tracker must cover every iterate so far
			ck := &Checkpoint{
				Method:   "bp",
				Iter:     iter,
				GammaK:   gammaK,
				Tighten:  guard.tighten,
				Failures: guard.failures,
				Y:        append([]float64(nil), yPrev...),
				Z:        append([]float64(nil), zPrev...),
				SK:       append([]float64(nil), skPrev...),
			}
			ck.fingerprint(p)
			ck.captureTracker(tr)
			if err := opts.CheckpointFunc(ck); err != nil {
				runErr = err
				break
			}
		}
		iter++
	}

	cancelled := stopped == StopCancelled || stopped == StopDeadline
	if !cancelled {
		flush()
	}
	if roundErr != nil && runErr == nil {
		runErr = roundErr
	}

	var out *AlignResult
	if cancelled && !tr.HasBest() {
		// Cancelled before any rounding completed: return an empty
		// matching rather than paying for an exact solve now.
		out = p.emptyResult()
	} else {
		var err error
		out, err = p.finishResult(tr, threads, opts.SkipFinalExact || cancelled)
		if err != nil && runErr == nil {
			runErr = err
		}
	}
	out.Iterations = lastIter
	out.Stopped = stopped
	out.NumericFailures = guard.failures
	out.Err = runErr
	if opts.Trace {
		out.ObjectiveTrace = append([]float64(nil), tr.Objective...)
	}
	return out, runErr
}

// bpSanityCheck verifies finite messages; used in tests via export.
func bpSanityCheck(vals []float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

package core

import (
	"math"

	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
	"netalignmc/internal/sparse"
	"netalignmc/internal/stats"
)

// BP step names, used by the Figure 7 per-step scaling study.
const (
	BPStepBoundF   = "boundF"   // Step 1: F = bound_{0,β}(βS + S^(k)T)
	BPStepComputeD = "computeD" // Step 2: d = αw + Fe
	BPStepOthermax = "othermax" // Step 3: othermax row/col updates
	BPStepUpdateS  = "updateS"  // Step 4: S^(k) = diag(y+z−d)·S − F
	BPStepDamping  = "damping"  // Step 5: geometric damping
	BPStepMatch    = "match"    // Step 6: rounding (possibly batched)
)

// Damping selects how BP iterates are blended with their predecessors
// (Section III-B: "We only describe one type of damping. See [13] for
// other variations.").
type Damping int

const (
	// DampPower blends with weight γ^k at iteration k (the paper's
	// choice; the blend weight decays so the iterates converge).
	DampPower Damping = iota
	// DampConstant blends with a fixed weight γ every iteration.
	DampConstant
	// DampNone applies no damping; the messages may oscillate, which
	// is why rounding every iterate and keeping the best still works.
	DampNone
)

// String returns the damping scheme name.
func (d Damping) String() string {
	switch d {
	case DampConstant:
		return "constant"
	case DampNone:
		return "none"
	default:
		return "power"
	}
}

// BPOptions configures the belief-propagation method (Listing 2).
type BPOptions struct {
	// Iterations is n_iter; the paper's scaling runs use 400 and note
	// 500–1000 is the useful maximum.
	Iterations int
	// Gamma is the damping base; under DampPower the iterates are
	// blended with weight γ^k at iteration k. The paper's experiments
	// use γ = 0.99.
	Gamma float64
	// Damp selects the damping scheme (default DampPower, the paper's).
	Damp Damping
	// Batch is the rounding batch size r of Section IV-C: iterate
	// vectors are collected and rounded together as concurrent tasks;
	// 1 rounds immediately (BP(batch=1)). Each iteration produces two
	// vectors (y and z), so a batch of r flushes every r/2 iterations.
	Batch int
	// Threads is the worker count (<= 0 means GOMAXPROCS).
	Threads int
	// Chunk is the dynamic-schedule chunk size (0 = 1000).
	Chunk int
	// Sched selects the scheduling policy for the S-indexed loops
	// (default Dynamic, the paper's choice); the scaling studies vary
	// it in place of the paper's NUMA memory-layout axis.
	Sched parallel.Schedule
	// Rounding is the matcher used to round iterates; nil selects
	// exact matching, matching.Approx gives the paper's substitution.
	// Unlike MR, BP's iterate sequence is independent of this choice —
	// rounding only evaluates quality (Section VII).
	Rounding matching.Matcher
	// TaskParallelOthermax computes othermaxrow and othermaxcol
	// concurrently, the reorganization sketched in the paper's
	// discussion ("the othermax functions could be computed
	// independently"). Off by default.
	TaskParallelOthermax bool
	// SkipFinalExact disables the final exact rounding of the best
	// heuristic (used by the scaling studies).
	SkipFinalExact bool
	// Timer, when non-nil, accumulates per-step wall time.
	Timer *stats.StepTimer
	// Trace records every rounded objective.
	Trace bool
	// WarmY and WarmZ, when non-nil, initialize the message vectors
	// instead of zeros. The steering workflow re-solves a problem
	// after editing L; transferring the previous solve's messages (see
	// TransferEdgeVector) lets the new run start near the old fixed
	// point. Lengths must equal |E_L|.
	WarmY, WarmZ []float64
	// Observer, when non-nil, is called after each iteration's damping
	// with the iteration number and the damped message vectors (which
	// alias internal buffers — copy before retaining). It exists for
	// message inspection and for the golden tests that pin the
	// listing's arithmetic.
	Observer func(iter int, y, z []float64)
}

func (o *BPOptions) defaults() BPOptions {
	opts := *o
	if opts.Iterations <= 0 {
		opts.Iterations = 100
	}
	if opts.Gamma <= 0 || opts.Gamma >= 1 {
		opts.Gamma = 0.99
	}
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	if opts.Rounding == nil {
		opts.Rounding = matching.Exact
	}
	if opts.Chunk <= 0 {
		opts.Chunk = parallel.DefaultChunk
	}
	return opts
}

// BPAlign runs the belief-propagation message-passing method
// (Listing 2). Messages y, z live on the edges of L; the message
// matrix S^(k) lives on the nonzeros of S. Each iteration bounds the
// overlap messages into F, folds them into the edge likelihoods d,
// applies the othermax exclusion updates, rescales S^(k), damps all
// three with weight γ^k, and rounds the damped y and z iterates to
// matchings whose objectives are tracked; the best heuristic is
// exact-rounded at the end.
func (p *Problem) BPAlign(o BPOptions) *AlignResult {
	opts := o.defaults()
	threads, chunk := opts.Threads, opts.Chunk
	sched := opts.Sched
	timer := opts.Timer
	nnz := p.S.NNZ()
	mEL := p.L.NumEdges()

	y := make([]float64, mEL)
	z := make([]float64, mEL)
	yPrev := make([]float64, mEL)
	zPrev := make([]float64, mEL)
	if len(opts.WarmY) == mEL {
		copy(yPrev, opts.WarmY)
	}
	if len(opts.WarmZ) == mEL {
		copy(zPrev, opts.WarmZ)
	}
	d := make([]float64, mEL)
	om := make([]float64, mEL)  // othermax scratch (row)
	om2 := make([]float64, mEL) // othermax scratch (col)
	sk := make([]float64, nnz)
	skPrev := make([]float64, nnz)
	f := make([]float64, nnz)

	sVal := p.S.Val
	perm := p.SPerm
	sRow := p.SRow
	beta := p.Beta
	w := p.L.W

	tr := &Tracker{Trace: opts.Trace}

	// batch holds pending iterate copies awaiting rounding.
	type pending struct {
		iter int
		heur []float64
	}
	var batch []pending
	flush := func() {
		if len(batch) == 0 {
			return
		}
		items := batch
		batch = nil
		timer.Time(BPStepMatch, func() {
			tasks := make([]func(int), len(items))
			for i := range items {
				it := items[i]
				tasks[i] = func(taskThreads int) {
					p.RoundHeuristic(it.heur, opts.Rounding, taskThreads, it.iter, tr)
				}
			}
			// Each task is one matching problem; with T threads and r
			// tasks each matching gets max(1, T/r) threads, the
			// paper's nested-parallelism scheme.
			parallel.Tasks(threads, tasks)
		})
	}

	gammaK := 1.0
	for iter := 1; iter <= opts.Iterations; iter++ {
		// Step 1: F = bound_{0,β}(β·S + S^(k−1)ᵀ). The transpose is
		// realized by pulling through the permutation with no
		// intermediate write.
		timer.Time(BPStepBoundF, func() {
			sched.For(nnz, threads, chunk, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					f[k] = sparse.Bound(beta*sVal[k]+skPrev[perm[k]], 0, beta)
				}
			})
		})

		// Step 2: d = αw + F·e (row sums of F over S's pattern).
		timer.Time(BPStepComputeD, func() {
			ptr := p.S.Ptr
			alpha := p.Alpha
			sched.For(mEL, threads, chunk, func(lo, hi int) {
				for e := lo; e < hi; e++ {
					s := 0.0
					for k := ptr[e]; k < ptr[e+1]; k++ {
						s += f[k]
					}
					d[e] = alpha*w[e] + s
				}
			})
		})

		// Step 3: othermax. y = d − othermaxcol(z⁽ᵏ⁻¹⁾),
		// z = d − othermaxrow(y⁽ᵏ⁻¹⁾).
		timer.Time(BPStepOthermax, func() {
			if opts.TaskParallelOthermax {
				parallel.Tasks(threads, []func(int){
					func(t int) { othermaxColsInto(om2, zPrev, p.L, t, chunk) },
					func(t int) { othermaxRowsInto(om, yPrev, p.L, t, chunk) },
				})
			} else {
				othermaxColsInto(om2, zPrev, p.L, threads, chunk)
				othermaxRowsInto(om, yPrev, p.L, threads, chunk)
			}
			parallel.ForStatic(mEL, threads, func(lo, hi int) {
				for e := lo; e < hi; e++ {
					y[e] = d[e] - om2[e]
					z[e] = d[e] - om[e]
				}
			})
		})

		// Step 4: S^(k) = diag(y + z − d)·S − F (row rescale minus F).
		timer.Time(BPStepUpdateS, func() {
			sched.For(nnz, threads, chunk, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					r := sRow[k]
					sk[k] = (y[r]+z[r]-d[r])*sVal[k] - f[k]
				}
			})
		})

		// Step 5: damping against the previous iterates; the damped
		// values become both the output of this iteration and the next
		// iteration's "previous" state.
		gammaK *= opts.Gamma
		timer.Time(BPStepDamping, func() {
			var g float64
			switch opts.Damp {
			case DampConstant:
				g = opts.Gamma
			case DampNone:
				g = 1
			default:
				g = gammaK
			}
			parallel.ForStatic(mEL, threads, func(lo, hi int) {
				for e := lo; e < hi; e++ {
					y[e] = g*y[e] + (1-g)*yPrev[e]
					z[e] = g*z[e] + (1-g)*zPrev[e]
				}
			})
			sched.For(nnz, threads, chunk, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					sk[k] = g*sk[k] + (1-g)*skPrev[k]
				}
			})
			y, yPrev = yPrev, y
			z, zPrev = zPrev, z
			sk, skPrev = skPrev, sk
			// After the swaps, *Prev hold iteration k's damped state.
		})

		if opts.Observer != nil {
			opts.Observer(iter, yPrev, zPrev)
		}

		// Step 6: round y and z (batched).
		batch = append(batch,
			pending{iter, append([]float64(nil), yPrev...)},
			pending{iter, append([]float64(nil), zPrev...)},
		)
		if len(batch) >= opts.Batch {
			flush()
		}
	}
	flush()

	out := p.finishResult(tr, threads, opts.SkipFinalExact)
	out.Iterations = opts.Iterations
	if opts.Trace {
		out.ObjectiveTrace = append([]float64(nil), tr.Objective...)
	}
	return out
}

// bpSanityCheck verifies finite messages; used in tests via export.
func bpSanityCheck(vals []float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

package core

import (
	"fmt"
	"math"
	"sync"

	"netalignmc/internal/matching"
)

// Tracker records the best rounded solution seen across the iteration,
// implementing the paper's round_heuristic bookkeeping ("also keep
// track of which g produced the largest objective"). It is safe for
// concurrent use because batched rounding evaluates several iterates
// simultaneously as tasks.
type Tracker struct {
	mu            sync.Mutex
	BestObjective float64
	BestIter      int
	BestMatching  *matching.Result
	// BestHeuristic is a copy of the heuristic weight vector that
	// produced the best objective; the methods run one final exact
	// matching on it (Section VII: "we perform one final step of exact
	// maximum weight matching to convert this into the returned
	// matching").
	BestHeuristic []float64
	// Evaluations counts round_heuristic calls.
	Evaluations int
	// Trace optionally records every evaluated objective in call
	// order; enabled by the experiment harness for Figure 3 sweeps.
	Trace     bool
	Objective []float64
	hasBest   bool
}

// Offer submits a rounded solution. m and heur are copied only when
// they win, so callers are free to recycle both buffers on the next
// iteration (the workspace rounding slots do exactly that).
// Non-finite objectives are recorded in the trace but never become the
// best solution: the tracker is the last line of the numerical-guard
// policy, so a NaN that slipped past the per-step checks cannot
// surface as the run's objective.
func (t *Tracker) Offer(iter int, obj float64, m *matching.Result, heur []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Evaluations++
	if t.Trace {
		t.Objective = append(t.Objective, obj)
	}
	if math.IsNaN(obj) || math.IsInf(obj, 0) {
		return
	}
	if !t.hasBest || obj > t.BestObjective {
		t.hasBest = true
		t.BestObjective = obj
		t.BestIter = iter
		if t.BestMatching == nil {
			t.BestMatching = &matching.Result{}
		}
		t.BestMatching.CopyFrom(m)
		t.BestHeuristic = append(t.BestHeuristic[:0], heur...)
	}
}

// Best returns the best objective seen and whether any solution has
// been offered, under the tracker's lock.
func (t *Tracker) Best() (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.BestObjective, t.hasBest
}

// HasBest reports whether any solution has been offered.
func (t *Tracker) HasBest() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hasBest
}

// RoundHeuristic is the paper's round_heuristic(g): compute
// x = bipartite_match(g) with the given matcher, evaluate the
// alignment objective of x, and offer the result to the tracker.
// It returns the objective and the matching. A heuristic vector whose
// length does not match L is an error (formerly a panic — this is an
// API-reachable condition, not a programmer invariant).
func (p *Problem) RoundHeuristic(heur []float64, m matching.Matcher, threads int, iter int, tr *Tracker) (float64, *matching.Result, error) {
	lw, err := p.L.WithWeights(heur)
	if err != nil {
		return 0, nil, fmt.Errorf("core: heuristic vector length mismatch: %w", err)
	}
	matched := m(lw, threads)
	// The matcher scored the heuristic weights; re-base the result on
	// L's true weights so downstream consumers see real match weight.
	res := matching.NewResult(p.L, matched.MateA, matched.MateB)
	x := res.Indicator(p.L)
	obj := p.Objective(x, threads)
	if tr != nil {
		tr.Offer(iter, obj, res, heur)
	}
	return obj, res, nil
}

// FinalRound performs the final exact rounding of the tracker's best
// heuristic and returns the resulting matching with its objective. If
// the tracker is empty it returns an empty matching. A tracked
// heuristic of the wrong length (a tracker shared across problems) is
// an error, not a panic.
func (p *Problem) FinalRound(tr *Tracker, threads int) (*matching.Result, float64, error) {
	if !tr.HasBest() {
		res := matching.Exact(p.L, threads)
		return res, p.ObjectiveOfMatching(res, threads), nil
	}
	lw, err := p.L.WithWeights(tr.BestHeuristic)
	if err != nil {
		return nil, 0, fmt.Errorf("core: tracked heuristic length mismatch: %w", err)
	}
	matched := matching.Exact(lw, threads)
	res := matching.NewResult(p.L, matched.MateA, matched.MateB)
	obj := p.ObjectiveOfMatching(res, threads)
	// The exact re-rounding of the best heuristic can only tie or
	// improve in matching weight but the full objective (with overlap)
	// may differ either way; keep whichever matching scores better.
	if obj >= tr.BestObjective {
		return res, obj, nil
	}
	return tr.BestMatching, tr.BestObjective, nil
}

package core_test

// Matrix test for locality reordering: a reorder view is a second
// *storage* layout of S (rows permuted, columns canonical, within-row
// order preserved), so for a fixed thread count the solver output must
// be bitwise identical across every mode — including the serialized
// checkpoint bytes, which canonicalize the nnz-ordered state — and a
// checkpoint taken under one mode must resume bit-identically under
// another.

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/matching"
	"netalignmc/internal/problemio"
)

func reorderBase(method core.Method, threads int) core.Options {
	o := core.Options{Method: method}
	switch method {
	case core.MethodMR:
		o.MR = core.MROptions{
			Iterations: 9, Threads: threads, Chunk: 16,
			Matcher: matching.MatcherSpec{Name: "approx"},
		}
	default:
		o.BP = core.BPOptions{
			Iterations: 9, Threads: threads, Chunk: 16, Batch: 2, Trace: true,
			Matcher: matching.MatcherSpec{Name: "approx"},
		}
	}
	return o
}

func TestReorderMatrix(t *testing.T) {
	p := smallSynthetic(t, 307)
	modes := []core.ReorderMode{core.ReorderNone, core.ReorderAuto, core.ReorderDegree, core.ReorderRCM}
	for _, method := range []core.Method{core.MethodBP, core.MethodMR} {
		for _, threads := range []int{1, 2} {
			base := reorderBase(method, threads)
			ref, refCks := runAligned(t, p, base, 4)
			if err := ref.Matching.Validate(p.L); err != nil {
				t.Fatalf("%v threads=%d: %v", method, threads, err)
			}
			for _, mode := range modes[1:] {
				name := fmt.Sprintf("%v/threads=%d/reorder=%v", method, threads, mode)
				ro := base
				ro.Reorder = core.ReorderOptions{Mode: mode}
				got, gotCks := runAligned(t, p, ro, 4)
				compareRuns(t, name, ref, got, refCks, gotCks)
			}
			// Reorder and pipeline composed must still match the
			// canonical barrier run bit for bit.
			if threads > 1 {
				name := fmt.Sprintf("%v/threads=%d/reorder=rcm/pipeline", method, threads)
				combo := base
				combo.Reorder = core.ReorderOptions{Mode: core.ReorderRCM}
				combo.Pipeline = core.PipelineOptions{Enabled: true}
				got, gotCks := runAligned(t, p, combo, 4)
				compareRuns(t, name, ref, got, refCks, gotCks)
			}
		}
	}
}

// TestResumeAcrossReorder saves a checkpoint under one reorder mode and
// resumes under another: the continuation must be bit-identical to the
// uninterrupted canonical run, because checkpoints serialize the
// nnz-ordered state canonically.
func TestResumeAcrossReorder(t *testing.T) {
	p := smallSynthetic(t, 311)
	for _, method := range []core.Method{core.MethodBP, core.MethodMR} {
		base := reorderBase(method, 2)

		// Uninterrupted canonical-order reference, saving iteration 4.
		var saved *core.Checkpoint
		ref := base
		setCheckpoint(&ref, 4, func(c *core.Checkpoint) error {
			if c.Iter != 4 {
				return nil
			}
			var buf bytes.Buffer
			if err := problemio.WriteCheckpoint(&buf, c); err != nil {
				return err
			}
			var err error
			saved, err = problemio.ReadCheckpoint(&buf)
			return err
		})
		refRes, err := p.Align(nil, ref)
		if err != nil {
			t.Fatal(err)
		}
		if saved == nil {
			t.Fatalf("%v: checkpoint at iteration 4 never written", method)
		}

		for _, mode := range []core.ReorderMode{core.ReorderNone, core.ReorderDegree, core.ReorderRCM} {
			resumed := base
			resumed.Reorder = core.ReorderOptions{Mode: mode}
			switch method {
			case core.MethodMR:
				resumed.MR.Resume = saved
			default:
				resumed.BP.Resume = saved
			}
			res, err := p.Align(nil, resumed)
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("%v/resume-under=%v", method, mode)
			if math.Float64bits(refRes.Objective) != math.Float64bits(res.Objective) {
				t.Fatalf("%s: objective %v != uninterrupted %v", name, res.Objective, refRes.Objective)
			}
			for i := range refRes.Matching.MateA {
				if refRes.Matching.MateA[i] != res.Matching.MateA[i] {
					t.Fatalf("%s: mateA[%d] = %d, uninterrupted has %d",
						name, i, res.Matching.MateA[i], refRes.Matching.MateA[i])
				}
			}
		}
	}
}

package core_test

import (
	"context"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
)

// TestBPRoundingDeterministic guards against scheduling-dependent
// tie-breaking in BP's batched rounding: each flush rounds its pending
// iterates (y and z of one or more iterations) as parallel tasks, and
// the tracker used to receive them in goroutine completion order, so
// two iterates tied on the objective could swap which matching won
// from run to run — even with Threads=1, since the task runner spawns
// a goroutine per item. The flush now offers results in batch order,
// making repeated single-threaded runs (and checkpointed resumes)
// bit-identical for any batch size.
func TestBPRoundingDeterministic(t *testing.T) {
	o := gen.DefaultSynthetic(3, 2) // this seed produces an objective tie
	o.N = 50
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	run := func(batch int) *core.AlignResult {
		res, err := p.BPAlignCtx(context.Background(), core.BPOptions{
			Iterations: 12, Batch: batch, Threads: 1, Rounding: matching.Approx,
			Trace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, batch := range []int{1, 4, 8} {
		first := run(batch)
		for i := 0; i < 4; i++ {
			res := run(batch)
			if res.Objective != first.Objective || res.BestIter != first.BestIter {
				t.Fatalf("batch %d run %d: objective/bestIter %v/%d != %v/%d",
					batch, i, res.Objective, res.BestIter, first.Objective, first.BestIter)
			}
			for a, b := range res.Matching.MateA {
				if first.Matching.MateA[a] != b {
					t.Fatalf("batch %d run %d: MateA[%d] = %d, first run %d",
						batch, i, a, b, first.Matching.MateA[a])
				}
			}
			for e, obj := range res.ObjectiveTrace {
				if first.ObjectiveTrace[e] != obj {
					t.Fatalf("batch %d run %d: trace[%d] = %v, first run %v",
						batch, i, e, obj, first.ObjectiveTrace[e])
				}
			}
		}
	}
}

package core

import (
	"fmt"
	"strconv"
)

// CacheFingerprint renders the output-affecting subset of an Options
// value as a canonical string, for content-addressed result caching:
// two option sets with the same fingerprint, run on the same
// canonicalized problem, produce bit-identical AlignResults.
//
// Defaults are resolved before rendering (an unset iteration budget
// and an explicit 100 fingerprint identically), and fields that
// cannot change the output bits are excluded on purpose:
//
//   - Threads, Chunk, Sched, Partition, NoPool: the dispatch layer;
//     results are pinned bit-identical across all of them
//     (TestPoolPartitionMatrix{BP,MR}).
//   - FuseKernels, TaskParallelOthermax: alternative evaluation
//     orders proven bit-identical to the originals.
//   - Options.Pipeline, Options.Reorder: execution-layout choices
//     pinned bit-identical to the barrier/canonical paths
//     (TestPipelineMatrix*, TestReorderMatrix*); excluding them lets
//     the cache coalesce runs across those settings.
//   - Workspace, Timer, Trace, Observer, CheckpointEvery,
//     CheckpointFunc: instrumentation and buffer reuse.
//
// The second return is false when the options are not cacheable at
// all: a deprecated Rounding func (opaque — it cannot be
// canonicalized), an armed fault injector, a warm start, or a resume
// checkpoint all make the run's output depend on state outside the
// (problem, fingerprint) pair.
//
// Problem-level inputs (alpha, beta, the graphs, generator seeds) are
// deliberately absent: the cache hashes the canonicalized problem
// bytes alongside this fingerprint, and those inputs are all baked
// into the bytes.
func (o Options) CacheFingerprint() (string, bool) {
	switch o.Method {
	case MethodMR:
		m := o.MR
		if m.Rounding != nil || m.Faults != nil || m.Resume != nil {
			return "", false
		}
		iters, gamma, mstep := m.Iterations, m.Gamma, m.MStep
		if iters <= 0 {
			iters = 100
		}
		if gamma <= 0 {
			gamma = 0.5
		}
		if mstep <= 0 {
			mstep = 10
		}
		return fmt.Sprintf("mr;iters=%d;gamma=%s;mstep=%d;ubound=%s;matcher=%s;greedyrow=%t;gaptol=%s;skipfinal=%t;guard=%s",
			iters, g(gamma), mstep, g(m.UBound), m.Matcher.String(),
			m.GreedyRowMatch, g(m.GapTolerance), m.SkipFinalExact, g(m.GuardLimit)), true
	case MethodBP:
		b := o.BP
		if b.Rounding != nil || b.Faults != nil || b.Resume != nil ||
			b.WarmY != nil || b.WarmZ != nil {
			return "", false
		}
		iters, gamma, batch := b.Iterations, b.Gamma, b.Batch
		if iters <= 0 {
			iters = 100
		}
		if gamma <= 0 || gamma >= 1 {
			gamma = 0.99
		}
		if batch <= 0 {
			batch = 1
		}
		return fmt.Sprintf("bp;iters=%d;gamma=%s;damp=%s;batch=%d;matcher=%s;skipfinal=%t;guard=%s",
			iters, g(gamma), b.Damp.String(), batch, b.Matcher.String(),
			b.SkipFinalExact, g(b.GuardLimit)), true
	default:
		return "", false
	}
}

// g renders a float64 canonically (shortest round-trip form).
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

package core_test

import (
	"math"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
)

// tinyRandomProblem builds a problem small enough for brute force.
func tinyRandomProblem(t testing.TB, seed int64, dbar float64) *core.Problem {
	t.Helper()
	o := gen.DefaultSynthetic(dbar, seed)
	o.N = 8
	o.MaxDeg = 4
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	if p.L.NumEdges() > 40 {
		t.Skip("instance too large for brute force")
	}
	return p
}

func TestBruteForceAlignTiny(t *testing.T) {
	p := tinyRandomProblem(t, 3, 1)
	opt, m := p.BruteForceAlign(0)
	if err := m.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	if got := p.ObjectiveOfMatching(m, 1); math.Abs(got-opt) > 1e-9 {
		t.Fatalf("reported optimum %g but matching scores %g", opt, got)
	}
	// The identity alignment is feasible, so opt dominates it.
	if id := p.Objective(p.IdentityIndicator(), 1); opt < id-1e-9 {
		t.Fatalf("optimum %g below identity %g", opt, id)
	}
}

func TestHeuristicsBoundedByBruteOptimum(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := tinyRandomProblem(t, seed, 1.5)
		opt, _ := p.BruteForceAlign(0)
		bp := p.BPAlign(core.BPOptions{Iterations: 30})
		mr := p.KlauAlign(core.MROptions{Iterations: 30})
		if bp.Objective > opt+1e-9 {
			t.Fatalf("seed %d: BP %g exceeds optimum %g", seed, bp.Objective, opt)
		}
		if mr.Objective > opt+1e-9 {
			t.Fatalf("seed %d: MR %g exceeds optimum %g", seed, mr.Objective, opt)
		}
		// On these tiny planted instances the heuristics should reach
		// at least 90% of the optimum.
		if bp.Objective < 0.9*opt-1e-9 {
			t.Fatalf("seed %d: BP %g far below optimum %g", seed, bp.Objective, opt)
		}
	}
}

func TestLPBoundDominatesBruteOptimum(t *testing.T) {
	p := tinyRandomProblem(t, 11, 1)
	opt, _ := p.BruteForceAlign(0)
	lpRes, err := p.LPRelaxation(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lpRes.Bound < opt-1e-6 {
		t.Fatalf("LP bound %g below brute optimum %g", lpRes.Bound, opt)
	}
}

func TestMRGapCertificateMatchesBrute(t *testing.T) {
	// When MR declares convergence, its objective must equal the brute
	// optimum (the whole point of the bound certificate).
	for seed := int64(20); seed <= 26; seed++ {
		p := tinyRandomProblem(t, seed, 1)
		res := p.KlauAlign(core.MROptions{Iterations: 80, GapTolerance: 1e-9})
		if !res.Converged {
			continue
		}
		opt, _ := p.BruteForceAlign(0)
		if math.Abs(res.Objective-opt) > 1e-6*(1+math.Abs(opt)) {
			t.Fatalf("seed %d: MR certified %g but optimum is %g", seed, res.Objective, opt)
		}
	}
}

func TestBruteForceAlignEdgeLimit(t *testing.T) {
	p := tinyRandomProblem(t, 5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("edge limit not enforced")
		}
	}()
	p.BruteForceAlign(1)
}

package core

import (
	"fmt"
	"math"
	"math/rand"
)

// Verify cross-checks the problem's derived structures against their
// definitions: L is structurally valid with finite weights, S is
// structurally symmetric with unit values and an empty diagonal, the
// transpose permutation is involutive, and sampleEntries randomly
// sampled (edge, edge) pairs of S agree with the overlap definition
// S[(i,i'),(j,j')] = 1 ⇔ (i,j) ∈ E_A ∧ (i',j') ∈ E_B (0 samples all
// pairs of stored entries plus an equal number of random pairs, which
// is exhaustive only for tiny problems — prefer a positive sample
// count on anything real). It exists for loaders and tests; a healthy
// problem always verifies.
func (p *Problem) Verify(sampleEntries int, rng *rand.Rand) error {
	if err := p.L.Validate(); err != nil {
		return fmt.Errorf("core: L invalid: %w", err)
	}
	for e, w := range p.L.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: L weight %d is not finite", e)
		}
	}
	if err := p.S.Validate(); err != nil {
		return fmt.Errorf("core: S invalid: %w", err)
	}
	if p.S.NumRows != p.L.NumEdges() || p.S.NumCols != p.L.NumEdges() {
		return fmt.Errorf("core: S is %dx%d but |E_L| = %d", p.S.NumRows, p.S.NumCols, p.L.NumEdges())
	}
	if len(p.SPerm) != p.S.NNZ() || len(p.SRow) != p.S.NNZ() {
		return fmt.Errorf("core: permutation/row-index arrays out of sync with S")
	}
	for k, pk := range p.SPerm {
		if pk < 0 || pk >= p.S.NNZ() || p.SPerm[pk] != k {
			return fmt.Errorf("core: transpose permutation not involutive at %d", k)
		}
	}
	check := func(e1, e2 int) error {
		i, iP := p.L.EdgeA[e1], p.L.EdgeB[e1]
		j, jP := p.L.EdgeA[e2], p.L.EdgeB[e2]
		want := 0.0
		if p.A.HasEdge(i, j) && p.B.HasEdge(iP, jP) {
			want = 1
		}
		if got := p.S.At(e1, e2); got != want {
			return fmt.Errorf("core: S[(%d,%d),(%d,%d)] = %g, want %g", i, iP, j, jP, got, want)
		}
		return nil
	}
	for k := 0; k < p.S.NNZ(); k++ {
		if p.S.Val[k] != 1 {
			return fmt.Errorf("core: S value %d is %g, want 1", k, p.S.Val[k])
		}
		if p.SRow[k] == p.S.Col[k] {
			return fmt.Errorf("core: S has a diagonal entry at %d", k)
		}
	}
	m := p.L.NumEdges()
	if m == 0 {
		return nil
	}
	if sampleEntries <= 0 {
		// Exhaustive over stored entries plus random zero checks.
		for k := 0; k < p.S.NNZ(); k++ {
			if err := check(p.SRow[k], p.S.Col[k]); err != nil {
				return err
			}
		}
		sampleEntries = p.S.NNZ() + 16
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	for s := 0; s < sampleEntries; s++ {
		if err := check(rng.Intn(m), rng.Intn(m)); err != nil {
			return err
		}
	}
	return nil
}

package core

import (
	"fmt"

	"netalignmc/internal/sparse"
	"netalignmc/internal/stats"
)

// Locality reordering: the S-indexed sweeps walk rows whose lengths
// are heavily skewed (stats.Skew measures the Gini of the row nonzero
// counts), so a deliberate row *storage* order — longest rows first,
// or an RCM profile order — makes each balanced partition a contiguous
// run of similar rows and improves cache behaviour, without changing a
// single output bit.
//
// The solvers never permute the problem itself. A reorderView is a
// second storage layout of S (see sparse.PermuteRows): rows appear in
// permuted order, column indices stay canonical, and within-row order
// is preserved. Storage-ordered state (S^(k), F, U, rowW, S_L) simply
// lives in the view's slot order; every edge-indexed vector (y, z, d,
// w̄, x) and every output surface (AlignResult, checkpoints, progress
// events) stays canonical. Per-row sums keep their association order
// and elementwise kernels are position-independent, so iterates are
// bit-identical with reordering on or off — and checkpoints serialize
// canonically (canonicalCopy/gather below), so a run resumed under
// different reorder settings is bit-identical too.

// ReorderMode selects the row ordering applied to S's storage.
type ReorderMode int

const (
	// ReorderNone keeps S's canonical construction order (the zero
	// value, so existing callers are unchanged).
	ReorderNone ReorderMode = iota
	// ReorderAuto applies ReorderDegree when the skew of S's row
	// nonzero counts crosses ReorderOptions.MinGini, and nothing
	// otherwise — reordering pays for itself only on imbalanced
	// problems.
	ReorderAuto
	// ReorderDegree stores the rows longest-first.
	ReorderDegree
	// ReorderRCM stores the rows in reverse Cuthill–McKee order of
	// S's (symmetric) pattern, clustering rows whose columns overlap.
	ReorderRCM
)

// String returns the mode's canonical name.
func (m ReorderMode) String() string {
	switch m {
	case ReorderAuto:
		return "auto"
	case ReorderDegree:
		return "degree"
	case ReorderRCM:
		return "rcm"
	default:
		return "none"
	}
}

// MarshalText implements encoding.TextMarshaler.
func (m ReorderMode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler; the empty string
// selects ReorderNone so unset flags and JSON fields stay valid.
func (m *ReorderMode) UnmarshalText(text []byte) error {
	switch string(text) {
	case "", "none":
		*m = ReorderNone
	case "auto":
		*m = ReorderAuto
	case "degree":
		*m = ReorderDegree
	case "rcm":
		*m = ReorderRCM
	default:
		return fmt.Errorf("core: unknown reorder mode %q (want none, auto, degree or rcm)", text)
	}
	return nil
}

// defaultReorderGini is ReorderAuto's activation threshold on the Gini
// coefficient of S's row nonzero counts; below it the rows are near
// uniform and reordering buys nothing.
const defaultReorderGini = 0.3

// ReorderOptions configures the locality reordering of S's rows. The
// zero value keeps the canonical order.
type ReorderOptions struct {
	// Mode selects the ordering (default ReorderNone).
	Mode ReorderMode
	// MinGini is ReorderAuto's activation threshold on the row-skew
	// Gini; 0 selects the default (0.3).
	MinGini float64
}

// reorderView is a cached alternative storage layout of S plus the
// index maps the solver kernels need to keep every edge-indexed
// quantity canonical. Built once per (problem, mode) and shared by
// concurrent solves (the view is read-only after construction).
type reorderView struct {
	mode ReorderMode
	s    *sparse.CSR // S with rows in permuted storage order
	rows []int       // rows[r'] = canonical row stored at slot r'
	// nzPerm[k'] = canonical nonzero index stored at slot k'; the
	// canonical<->storage gather for checkpoint state.
	nzPerm []int
	// perm is the transpose permutation expressed in storage
	// coordinates: v'[perm[k']] is the transpose partner of v'[k'].
	perm []int
	// sRow[k'] is the *canonical* row (= L-edge id) of stored
	// nonzero k', for kernels that index edge vectors.
	sRow []int
}

// reorderViewFor resolves the options to a concrete ordering and
// returns the (cached) view, or nil when no reordering applies.
func (p *Problem) reorderViewFor(o ReorderOptions) (*reorderView, error) {
	mode := o.Mode
	if mode == ReorderAuto {
		minGini := o.MinGini
		if minGini <= 0 {
			minGini = defaultReorderGini
		}
		if stats.SkewOfPtr(p.S.Ptr).Gini >= minGini {
			mode = ReorderDegree
		} else {
			mode = ReorderNone
		}
	}
	if mode == ReorderNone {
		return nil, nil
	}
	p.reorderMu.Lock()
	defer p.reorderMu.Unlock()
	if v := p.reorderViews[mode]; v != nil {
		return v, nil
	}
	var order []int
	switch mode {
	case ReorderDegree:
		order = sparse.DegreeOrder(p.S.Ptr)
	case ReorderRCM:
		order = sparse.RCMOrder(p.S)
	default:
		return nil, fmt.Errorf("core: unknown reorder mode %d", mode)
	}
	s, nzPerm, err := sparse.PermuteRows(p.S, order)
	if err != nil {
		return nil, fmt.Errorf("core: reorder: %w", err)
	}
	inv := make([]int, len(nzPerm))
	for kNew, kOld := range nzPerm {
		inv[kOld] = kNew
	}
	perm := make([]int, len(nzPerm))
	sRow := make([]int, len(nzPerm))
	for kNew, kOld := range nzPerm {
		perm[kNew] = inv[p.SPerm[kOld]]
		sRow[kNew] = p.SRow[kOld]
	}
	v := &reorderView{mode: mode, s: s, rows: order, nzPerm: nzPerm, perm: perm, sRow: sRow}
	if p.reorderViews == nil {
		p.reorderViews = make(map[ReorderMode]*reorderView)
	}
	p.reorderViews[mode] = v
	return v, nil
}

// canonicalCopy returns a fresh copy of a storage-ordered nnz vector
// in canonical order — what checkpoints serialize. A nil view is the
// identity layout.
func (v *reorderView) canonicalCopy(storage []float64) []float64 {
	out := make([]float64, len(storage))
	if v == nil {
		copy(out, storage)
		return out
	}
	for k, c := range v.nzPerm {
		out[c] = storage[k]
	}
	return out
}

// gather fills a storage-ordered nnz vector from a canonical one —
// the resume direction. A nil view is the identity layout.
func (v *reorderView) gather(dst, canonical []float64) {
	if v == nil {
		copy(dst, canonical)
		return
	}
	for k, c := range v.nzPerm {
		dst[k] = canonical[c]
	}
}

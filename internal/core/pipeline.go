package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"netalignmc/internal/parallel"
	"netalignmc/internal/stats"
)

// Pipelined batched rounding (the netAlignR batch_rounding design):
// instead of stalling every flush on a rounding barrier, the solver
// snapshots each batch of score vectors into a ring of workspace slot
// groups and hands the group to a collector goroutine, which rounds
// the slots on a dedicated worker budget while the main loop runs the
// next sweep. Objective tracking becomes eventually consistent — the
// tracker may lag the sweep by up to Depth batches — with a
// deterministic drain wherever the barrier path required a complete
// tracker (checkpoints, convergence, run end).
//
// The overlap changes no output bit. Three properties pin this:
//
//   1. Batch composition is identical: the main loop fills and flushes
//      slots at exactly the barrier path's boundaries, so batch k
//      holds the same heuristics in the same order in both modes.
//   2. Each slot is rounded with the same nested thread budget the
//      barrier's pool dispatch would hand it (nestedBudget replicates
//      parallel.Pool.Tasks' per-task split of the solve's total
//      budget), so matcher results and the objective reduction's
//      partition — the only thread-count-sensitive computations — are
//      bit-identical.
//   3. Offers reach the tracker in batch-FIFO, slot-in-batch order —
//      one collector goroutine, one FIFO channel — and Tracker.Offer
//      resolves ties by first arrival, so the selected iterate cannot
//      depend on task scheduling.
//
// On cancellation the collector's TasksCtx skips not-yet-started
// slots (their ok flag was cleared at submit, so they are never
// offered) and lets running slots finish (offered exactly once): no
// rounding batch is lost or double-counted mid-cancel.

// Timer step names for the pipeline's off-critical-path work. Stall
// time (the main loop blocked on the ring) stays charged to the
// method's own match/objective step, so step tables remain comparable
// with barrier runs; the overlapped work appears under these names.
const (
	StepMatchOverlap     = "match-overlap"     // BP: rounding hidden behind sweeps
	StepObjectiveOverlap = "objective-overlap" // MR: deferred objective + offer
)

// PipelineOptions configures pipelined batched rounding for either
// method; the zero value keeps the classic barrier path.
type PipelineOptions struct {
	// Enabled turns the pipeline on. It engages only when the solve
	// is parallel (threads >= 2) and no fault injector is armed; MR
	// additionally requires that nothing reads the tracker or the
	// objective inside the loop (no GapTolerance, Observer, or
	// Trace), since those would observe the deferred offers.
	Enabled bool
	// Depth is the number of batches in flight (ring size); the main
	// loop blocks once Depth batches are unrounded. 0 selects 2:
	// one batch rounding while the next fills.
	Depth int
	// MatchWorkers is the collector's task concurrency — how many
	// slots round at once — and the share of the thread budget taken
	// from the sweeps (the sweep dispatcher runs on total −
	// MatchWorkers workers). 0 selects half the solve's budget.
	MatchWorkers int
}

// withDefaults resolves the pipeline parameters against the solve's
// total thread budget.
func (o PipelineOptions) withDefaults(total int) PipelineOptions {
	out := o
	if out.Depth <= 0 {
		out.Depth = 2
	}
	if out.MatchWorkers <= 0 {
		out.MatchWorkers = total / 2
	}
	if out.MatchWorkers < 1 {
		out.MatchWorkers = 1
	}
	if out.MatchWorkers > total {
		out.MatchWorkers = total
	}
	return out
}

// PipelineReport is the overlap accounting of one pipelined solve,
// attached to AlignResult.Pipeline.
type PipelineReport struct {
	// Batches counts submitted rounding batches.
	Batches int
	// OverlapNs is collector busy time: wall time spent rounding and
	// offering off the critical path.
	OverlapNs int64
	// StallNs is main-loop time blocked on the pipeline (ring full,
	// deterministic drains) — the part of the matching cost the
	// pipeline could not hide.
	StallNs int64
	// HiddenMatchNs is max(0, OverlapNs − StallNs): rounding wall
	// time genuinely overlapped with sweeps.
	HiddenMatchNs int64
}

// Package-level pipeline counters, aggregated across solves for the
// daemon's /metrics endpoint (same pattern as parallel.SchedStats).
var (
	pipeRunsTotal    atomic.Int64
	pipeBatchesTotal atomic.Int64
	pipeOverlapTotal atomic.Int64
	pipeStallTotal   atomic.Int64
	pipeHiddenTotal  atomic.Int64
)

// PipelineCounters is a snapshot of the process-wide pipelined
// rounding totals.
type PipelineCounters struct {
	Runs, Batches                int64
	OverlapNs, StallNs, HiddenNs int64
}

// ReadPipelineCounters returns the process-wide pipeline totals.
func ReadPipelineCounters() PipelineCounters {
	return PipelineCounters{
		Runs:      pipeRunsTotal.Load(),
		Batches:   pipeBatchesTotal.Load(),
		OverlapNs: pipeOverlapTotal.Load(),
		StallNs:   pipeStallTotal.Load(),
		HiddenNs:  pipeHiddenTotal.Load(),
	}
}

// nestedBudget replicates parallel.Pool.Tasks' per-task thread split:
// n concurrent tasks from a budget of total threads each receive
// max(1, total/min(total, n)) threads (a single task receives the
// whole budget). The pipeline must hand each slot exactly this budget
// or the matcher and objective bits would differ from the barrier's.
func nestedBudget(total, n int) int {
	if n <= 1 {
		return total
	}
	conc := total
	if n < conc {
		conc = n
	}
	per := total / conc
	if per < 1 {
		per = 1
	}
	return per
}

// pipeGroup is one ring entry: a batch worth of rounding slots plus
// their prebuilt task closures (built once — a closure handed to the
// parallel constructs escapes). A group with notify set is a drain
// marker, not work.
type pipeGroup struct {
	slots  []*roundSlot
	tasks  []func(int)
	n      int
	notify chan struct{}
}

// roundingPipeline runs rounding batches on a collector goroutine
// concurrently with the solver loop. The ring hands groups back and
// forth over channels, so every slot is owned by exactly one side at
// a time (channel handoff is the memory barrier).
type roundingPipeline struct {
	tr    *Tracker
	timer *stats.StepTimer
	ctx   context.Context

	jobs chan *pipeGroup // main -> collector, FIFO
	free chan *pipeGroup // collector -> main
	cur  *pipeGroup      // group the main loop is filling

	total   int // the solve's thread budget (nested-budget base)
	workers int // collector task concurrency

	stallStep   string
	overlapStep string

	wg        sync.WaitGroup
	closed    bool
	batches   int
	stallNs   int64        // main-goroutine only
	overlapNs atomic.Int64 // written by collector, read by report
}

// newRoundingPipeline builds the ring over slots (length must be a
// multiple of groupSize), starts the collector, and returns the
// pipeline with its first group ready to fill. work rounds (or
// scores) one slot using s.threads as its nested budget; it runs on
// the collector and must set s.ok when the slot should be offered.
func newRoundingPipeline(ctx context.Context, tr *Tracker, timer *stats.StepTimer,
	slots []*roundSlot, groupSize int, cfg PipelineOptions, total int,
	stallStep, overlapStep string, work func(*roundSlot)) *roundingPipeline {
	depth := len(slots) / groupSize
	pl := &roundingPipeline{
		tr:          tr,
		timer:       timer,
		ctx:         ctx,
		jobs:        make(chan *pipeGroup, depth+1),
		free:        make(chan *pipeGroup, depth),
		total:       total,
		workers:     cfg.MatchWorkers,
		stallStep:   stallStep,
		overlapStep: overlapStep,
	}
	groups := make([]*pipeGroup, depth)
	for gi := range groups {
		g := &pipeGroup{
			slots: slots[gi*groupSize : (gi+1)*groupSize],
			tasks: make([]func(int), groupSize),
		}
		for i, s := range g.slots {
			s := s
			g.tasks[i] = func(int) { work(s) }
		}
		groups[gi] = g
	}
	pl.cur = groups[0]
	for _, g := range groups[1:] {
		pl.free <- g
	}
	pl.wg.Add(1)
	go pl.run()
	return pl
}

// run is the collector: it rounds each batch with the nested budgets
// fixed at submit time and offers the outcomes in slot order. One
// goroutine draining one FIFO channel is what makes the offer
// sequence — and therefore the tracker's tie-breaks — deterministic.
func (pl *roundingPipeline) run() {
	defer pl.wg.Done()
	for g := range pl.jobs {
		if g.notify != nil {
			close(g.notify)
			continue
		}
		start := time.Now()
		// Cancellation skips slots that have not started (ok stays
		// false from submit) and lets running ones finish.
		_ = parallel.TasksCtx(pl.ctx, pl.workers, g.tasks[:g.n])
		for _, s := range g.slots[:g.n] {
			if s.ok {
				pl.tr.Offer(s.iter, s.obj, &s.res, s.heur)
			}
		}
		d := time.Since(start)
		pl.overlapNs.Add(int64(d))
		pl.timer.Add(pl.overlapStep, d)
		g.n = 0
		pl.free <- g
	}
}

// submit hands the current group's first n slots to the collector and
// acquires the next group to fill, blocking (stall time) only when
// all Depth groups are in flight.
func (pl *roundingPipeline) submit(n int) {
	g := pl.cur
	g.n = n
	per := nestedBudget(pl.total, n)
	for _, s := range g.slots[:n] {
		s.ok = false // a skipped slot must not re-offer a stale result
		s.threads = per
	}
	pl.jobs <- g
	pl.batches++
	select {
	case pl.cur = <-pl.free:
	default:
		start := time.Now()
		pl.cur = <-pl.free
		pl.chargeStall(time.Since(start))
	}
}

// drain blocks until every submitted batch has been rounded and
// offered. FIFO ordering makes a marker behind the last real group a
// complete barrier; the solvers call this before capturing a
// checkpoint tracker and before finishing the result.
func (pl *roundingPipeline) drain() {
	m := &pipeGroup{notify: make(chan struct{})}
	start := time.Now()
	pl.jobs <- m
	<-m.notify
	pl.chargeStall(time.Since(start))
}

// chargeStall books main-loop blocked time against the method's own
// matching/objective step so barrier and pipelined step tables stay
// comparable.
func (pl *roundingPipeline) chargeStall(d time.Duration) {
	pl.stallNs += int64(d)
	pl.timer.Add(pl.stallStep, d)
}

// close stops the collector; idempotent. Callers drain first when
// pending offers must land.
func (pl *roundingPipeline) close() {
	if pl.closed {
		return
	}
	pl.closed = true
	close(pl.jobs)
	pl.wg.Wait()
}

// report finalizes the overlap accounting and publishes it to the
// process-wide counters. Call after close.
func (pl *roundingPipeline) report() *PipelineReport {
	overlap := pl.overlapNs.Load()
	hidden := overlap - pl.stallNs
	if hidden < 0 {
		hidden = 0
	}
	pipeRunsTotal.Add(1)
	pipeBatchesTotal.Add(int64(pl.batches))
	pipeOverlapTotal.Add(overlap)
	pipeStallTotal.Add(pl.stallNs)
	pipeHiddenTotal.Add(hidden)
	return &PipelineReport{
		Batches:       pl.batches,
		OverlapNs:     overlap,
		StallNs:       pl.stallNs,
		HiddenMatchNs: hidden,
	}
}

package core

import (
	"fmt"

	"netalignmc/internal/lp"
	"netalignmc/internal/matching"
)

// LPRelaxationResult is the outcome of solving the relaxed MILP.
type LPRelaxationResult struct {
	// Scores are the relaxed x values over E_L (the "real-valued score
	// for each edge in L" of Section III).
	Scores []float64
	// Bound is the LP optimum — an upper bound on every integral
	// alignment objective.
	Bound float64
	// Rounded is the alignment obtained by rounding the scores with
	// one exact matching, Section III's straightforward heuristic.
	Rounded *AlignResult
	// Iterations is the simplex pivot count.
	Iterations int
}

// LPRelaxation builds and solves the LP relaxation of the paper's
// MILP formulation:
//
//	maximize    α·wᵀx + (β/2)·eᵀYe
//	subject to  Cx ≤ e                     (matching constraints)
//	            Y_kl ≤ x_k, Y_kl ≤ x_l     for every nonzero of S
//	            0 ≤ x ≤ 1, Y ≥ 0
//
// with the integrality of x dropped. The variables are the |E_L| edge
// scores plus one Y variable per stored nonzero of S (the symmetric
// pair (l,k) is a separate variable, matching eᵀYe = xᵀSx's double
// counting under the β/2 factor). Solving it yields both an upper
// bound on the alignment optimum and the score vector the
// straightforward rounding heuristic uses. The dense simplex solver
// limits this to small instances (the paper, likewise, presents the LP
// only as a conceptual baseline: "Both of the algorithms below
// outperform this procedure").
func (p *Problem) LPRelaxation(maxVars int, threads int) (*LPRelaxationResult, error) {
	mEL := p.L.NumEdges()
	nnz := p.S.NNZ()
	nVars := mEL + nnz
	if maxVars > 0 && nVars > maxVars {
		return nil, fmt.Errorf("core: LP relaxation has %d variables, above the limit %d (dense simplex)", nVars, maxVars)
	}
	prob := &lp.Problem{
		NumVars:   nVars,
		Objective: make([]float64, nVars),
	}
	for e := 0; e < mEL; e++ {
		prob.Objective[e] = p.Alpha * p.L.W[e]
	}
	for k := 0; k < nnz; k++ {
		prob.Objective[mEL+k] = p.Beta / 2
	}
	// Matching constraints: Σ_{e ∈ row(a)} x_e ≤ 1 and column-wise.
	for a := 0; a < p.L.NA; a++ {
		lo, hi := p.L.RowRange(a)
		if lo == hi {
			continue
		}
		c := lp.Constraint{B: 1}
		for e := lo; e < hi; e++ {
			c.Cols = append(c.Cols, e)
			c.Vals = append(c.Vals, 1)
		}
		prob.Constraints = append(prob.Constraints, c)
	}
	for b := 0; b < p.L.NB; b++ {
		edges := p.L.ColEdgesOf(b)
		if len(edges) == 0 {
			continue
		}
		c := lp.Constraint{B: 1}
		for _, e := range edges {
			c.Cols = append(c.Cols, e)
			c.Vals = append(c.Vals, 1)
		}
		prob.Constraints = append(prob.Constraints, c)
	}
	// Linking constraints: Y_kl − x_k ≤ 0 and Y_kl − x_l ≤ 0.
	for k := 0; k < nnz; k++ {
		rowEdge := p.SRow[k]
		colEdge := p.S.Col[k]
		prob.Constraints = append(prob.Constraints,
			lp.Constraint{Cols: []int{mEL + k, rowEdge}, Vals: []float64{1, -1}, B: 0},
			lp.Constraint{Cols: []int{mEL + k, colEdge}, Vals: []float64{1, -1}, B: 0},
		)
	}
	// x ≤ 1 for isolated edges not covered by a matching row with more
	// entries is already implied by the row constraints above (every
	// edge appears in its A-row and B-column constraint).

	sol, err := lp.Solve(prob, 0)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: LP relaxation did not reach optimality: %v", sol.Status)
	}
	res := &LPRelaxationResult{
		Scores:     append([]float64(nil), sol.X[:mEL]...),
		Bound:      sol.Value,
		Iterations: sol.Iterations,
	}
	// Round the scores with one exact matching and evaluate.
	tr := &Tracker{}
	if _, _, err := p.RoundHeuristic(res.Scores, matching.Exact, threads, 1, tr); err != nil {
		return nil, err
	}
	x := tr.BestMatching.Indicator(p.L)
	res.Rounded = &AlignResult{
		Matching:    tr.BestMatching,
		Objective:   tr.BestObjective,
		MatchWeight: p.MatchWeight(x, threads),
		Overlap:     p.Overlap(x, threads),
		BestIter:    1,
		Iterations:  1,
		Evaluations: 1,
	}
	return res, nil
}

package core

import (
	"sync"

	"netalignmc/internal/matching"
)

// ProgressEvent is one per-iteration progress report from a running
// alignment. For MR the objective and upper bound come straight from
// the iteration; for BP — whose iterates are message vectors, not
// objectives — the reporter rounds the current y messages with the
// cheap approximate matcher to estimate the objective. Best is the
// largest objective the reporter has seen so far (which can lag the
// solver's own tracker by at most the rounding batch).
type ProgressEvent struct {
	Method    string  `json:"method"`
	Iter      int     `json:"iter"`
	Objective float64 `json:"objective"`
	Best      float64 `json:"best"`
	Upper     float64 `json:"upper"`
	HasUpper  bool    `json:"hasUpper"`
}

// ProgressReporter adapts the solvers' Observer hooks into a uniform
// per-iteration event stream. The same reporter backs `netalign
// -progress` and the netalignd SSE endpoint, so both surfaces emit
// identical events. It is safe for use from a single solver run; the
// callback is invoked on the solver goroutine and must not block for
// long (buffer or drop downstream).
type ProgressReporter struct {
	p     *Problem
	every int
	fn    func(ProgressEvent)

	mu      sync.Mutex
	best    float64
	hasBest bool
}

// NewProgressReporter builds a reporter for one run of problem p that
// emits an event every `every` iterations (<= 0 means every
// iteration) to fn.
func NewProgressReporter(p *Problem, every int, fn func(ProgressEvent)) *ProgressReporter {
	if every <= 0 {
		every = 1
	}
	return &ProgressReporter{p: p, every: every, fn: fn}
}

func (r *ProgressReporter) observe(ev ProgressEvent) {
	r.mu.Lock()
	if !r.hasBest || ev.Objective > r.best {
		r.hasBest = true
		r.best = ev.Objective
	}
	ev.Best = r.best
	r.mu.Unlock()
	r.fn(ev)
}

// BPObserver returns an observer for BPOptions.Observer. Each
// reported iteration rounds the damped y messages with the parallel
// half-approximate matcher (single-threaded, outside the solver's own
// tracker) to produce an objective estimate; the extra work is
// comparable to one of the two roundings BP already performs per
// iteration.
func (r *ProgressReporter) BPObserver() func(iter int, y, z []float64) {
	return func(iter int, y, z []float64) {
		if iter%r.every != 0 {
			return
		}
		obj, _, err := r.p.RoundHeuristic(y, matching.Approx, 1, iter, nil)
		if err != nil {
			return
		}
		r.observe(ProgressEvent{Method: "bp", Iter: iter, Objective: obj})
	}
}

// MRObserver returns an observer for MROptions.Observer; MR's
// iterations already carry the rounded objective and the upper bound,
// so the event is free.
func (r *ProgressReporter) MRObserver() func(iter int, wbar []float64, upper, obj float64) {
	return func(iter int, wbar []float64, upper, obj float64) {
		if iter%r.every != 0 {
			return
		}
		r.observe(ProgressEvent{Method: "mr", Iter: iter, Objective: obj, Upper: upper, HasUpper: true})
	}
}

package core

import (
	"context"
	"fmt"
	"math"

	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
)

// StopReason records why an alignment run ended. The zero value is
// StopMaxIter (the fixed iteration budget ran out), which is also what
// every pre-context run reports.
type StopReason int

const (
	// StopMaxIter: the iteration budget was exhausted.
	StopMaxIter StopReason = iota
	// StopConverged: MR closed its bound gap below GapTolerance.
	StopConverged
	// StopCancelled: the context was cancelled mid-run.
	StopCancelled
	// StopDeadline: the context deadline expired mid-run.
	StopDeadline
	// StopNumerics: the numeric guard hit a recurring NaN/Inf or
	// message explosion and stopped with the best valid matching.
	StopNumerics
)

// String returns the stop reason name.
func (r StopReason) String() string {
	switch r {
	case StopConverged:
		return "converged"
	case StopCancelled:
		return "cancelled"
	case StopDeadline:
		return "deadline"
	case StopNumerics:
		return "numerics"
	default:
		return "max-iterations"
	}
}

// stopReasonForCtx maps a context error to its stop reason.
func stopReasonForCtx(err error) StopReason {
	if err == context.DeadlineExceeded {
		return StopDeadline
	}
	return StopCancelled
}

// FaultInjector corrupts solver state at named steps. It exists so the
// robustness tests (internal/faults) can deterministically inject NaNs
// into any step's output vector without build tags; production runs
// leave the option nil and pay one nil check per step.
type FaultInjector interface {
	// CorruptVector may overwrite entries of vec, the output vector of
	// the named step at the given iteration.
	CorruptVector(step string, iter int, vec []float64)
}

// Checkpoint is a serializable snapshot of a solver run at an
// iteration boundary: the iterate/message vectors, the step-control
// scalars, and the tracker's best rounded matching. Resuming from a
// checkpoint reproduces the uninterrupted run bit for bit (same
// problem, same options). Checkpoints are produced via
// BPOptions/MROptions.CheckpointEvery + CheckpointFunc and consumed
// via the Resume option; internal/problemio serializes them with
// exact hexadecimal float round-tripping.
type Checkpoint struct {
	// Method is "bp" or "mr".
	Method string
	// Iter is the number of completed iterations.
	Iter int

	// Problem fingerprint, validated on resume.
	Alpha, Beta     float64
	NA, NB, EL, NNZ int

	// BP state: damped message vectors after iteration Iter and the
	// damping weight accumulator.
	Y, Z, SK []float64
	GammaK   float64

	// MR state: Lagrange multipliers and subgradient step control.
	U             []float64
	Gamma         float64
	BestUpper     float64
	HaveUpper     bool
	SinceImproved int

	// Numeric-guard state.
	Tighten  float64
	Failures int

	// Tracker state: the best rounded solution so far.
	HasBest       bool
	BestIter      int
	Evaluations   int
	BestObjective float64
	BestHeuristic []float64
	BestMateA     []int
}

// Validate checks that the checkpoint belongs to this problem and
// method. It guards resume against the checkpoint-from-a-different-
// problem class of mistakes before any state is copied.
func (c *Checkpoint) Validate(p *Problem, method string) error {
	if c == nil {
		return fmt.Errorf("core: nil checkpoint")
	}
	if c.Method != method {
		return fmt.Errorf("core: checkpoint is for method %q, not %q", c.Method, method)
	}
	if c.NA != p.L.NA || c.NB != p.L.NB || c.EL != p.L.NumEdges() || c.NNZ != p.S.NNZ() {
		return fmt.Errorf("core: checkpoint fingerprint (na=%d nb=%d el=%d nnz=%d) does not match problem (na=%d nb=%d el=%d nnz=%d)",
			c.NA, c.NB, c.EL, c.NNZ, p.L.NA, p.L.NB, p.L.NumEdges(), p.S.NNZ())
	}
	if c.Alpha != p.Alpha || c.Beta != p.Beta {
		return fmt.Errorf("core: checkpoint objective weights (alpha=%g beta=%g) do not match problem (alpha=%g beta=%g)",
			c.Alpha, c.Beta, p.Alpha, p.Beta)
	}
	if c.Iter < 0 {
		return fmt.Errorf("core: checkpoint iteration %d negative", c.Iter)
	}
	switch method {
	case "bp":
		if len(c.Y) != c.EL || len(c.Z) != c.EL || len(c.SK) != c.NNZ {
			return fmt.Errorf("core: bp checkpoint vector lengths (y=%d z=%d sk=%d) do not match el=%d nnz=%d",
				len(c.Y), len(c.Z), len(c.SK), c.EL, c.NNZ)
		}
	case "mr":
		if len(c.U) != c.NNZ {
			return fmt.Errorf("core: mr checkpoint multiplier length %d does not match nnz=%d", len(c.U), c.NNZ)
		}
	}
	if c.HasBest {
		if len(c.BestHeuristic) != c.EL {
			return fmt.Errorf("core: checkpoint best heuristic length %d does not match el=%d", len(c.BestHeuristic), c.EL)
		}
		if len(c.BestMateA) != c.NA {
			return fmt.Errorf("core: checkpoint best matching length %d does not match na=%d", len(c.BestMateA), c.NA)
		}
	}
	return nil
}

// fingerprint stamps the problem identity onto a checkpoint.
func (c *Checkpoint) fingerprint(p *Problem) {
	c.Alpha, c.Beta = p.Alpha, p.Beta
	c.NA, c.NB = p.L.NA, p.L.NB
	c.EL = p.L.NumEdges()
	c.NNZ = p.S.NNZ()
}

// captureTracker copies the tracker's best solution into c.
func (c *Checkpoint) captureTracker(tr *Tracker) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	c.HasBest = tr.hasBest
	c.BestIter = tr.BestIter
	c.Evaluations = tr.Evaluations
	c.BestObjective = tr.BestObjective
	if tr.hasBest {
		c.BestHeuristic = append([]float64(nil), tr.BestHeuristic...)
		c.BestMateA = append([]int(nil), tr.BestMatching.MateA...)
	}
}

// restoreTracker rebuilds a tracker from the checkpoint's best
// solution (after Validate has passed).
func (c *Checkpoint) restoreTracker(p *Problem, tr *Tracker) {
	tr.Evaluations = c.Evaluations
	if !c.HasBest {
		return
	}
	mateA := append([]int(nil), c.BestMateA...)
	mateB := make([]int, c.NB)
	for b := range mateB {
		mateB[b] = -1
	}
	for a, b := range mateA {
		if b >= 0 {
			mateB[b] = a
		}
	}
	tr.hasBest = true
	tr.BestIter = c.BestIter
	tr.BestObjective = c.BestObjective
	tr.BestHeuristic = append([]float64(nil), c.BestHeuristic...)
	tr.BestMatching = matching.NewResult(p.L, mateA, mateB)
}

// defaultGuardLimit is the message-magnitude threshold of the numeric
// guard: far above anything a sane iteration produces, far below
// overflow, so explosion is caught while it is still recoverable.
const defaultGuardLimit = 1e100

// guardRetries is how many rollbacks the numeric guard attempts before
// declaring the failure recurring and stopping with StopNumerics: one
// rollback, then stop if the retried iteration fails again.
const guardRetries = 1

// maxGuardFailures caps total numeric failures across a run so
// scattered transient faults cannot livelock the solver.
const maxGuardFailures = 10

// numericGuard implements the shared BP/MR numerical-hardening policy:
// per-iteration NaN/Inf and magnitude-explosion detection with
// rollback to the last good iterate, damping/step tightening, and
// escalation to StopNumerics when the failure recurs.
type numericGuard struct {
	limit float64
	// tighten is the accumulated damping multiplier (< 1 after a
	// rollback); solvers fold it into their step/damping weight.
	tighten float64
	// failures counts guard trips across the run; consecutive counts
	// trips since the last clean iteration.
	failures    int
	consecutive int
	disabled    bool

	// vec/fold implement the multi-thread scan without per-call
	// closures: fold is created once per guard and reads whichever
	// vector ok has bound to vec, keeping the per-iteration guard scan
	// off the allocation budget.
	vec  []float64
	fold func(lo, hi int) float64
}

// newNumericGuard builds a guard from the options' limit field:
// 0 selects defaultGuardLimit, negative disables the guard.
func newNumericGuard(limit float64) *numericGuard {
	g := &numericGuard{limit: limit, tighten: 1}
	if limit == 0 {
		g.limit = defaultGuardLimit
	} else if limit < 0 {
		g.disabled = true
	}
	g.fold = func(lo, hi int) float64 {
		return maxAbsOrInfRange(g.vec, lo, hi)
	}
	return g
}

// ok scans the vectors for NaN/Inf and magnitude explosion.
func (g *numericGuard) ok(threads int, vecs ...[]float64) bool {
	if g.disabled {
		return true
	}
	if parallel.Threads(threads) == 1 {
		for _, v := range vecs {
			if maxAbsOrInfRange(v, 0, len(v)) > g.limit {
				return false
			}
		}
		return true
	}
	for _, v := range vecs {
		g.vec = v
		m := parallel.ReduceFloat64(len(v), threads, g.fold, math.Max, 0)
		g.vec = nil
		if m > g.limit {
			return false
		}
	}
	return true
}

// clean records a successful iteration.
func (g *numericGuard) clean() { g.consecutive = 0 }

// trip records a guard failure; it reports whether the solver should
// roll back and retry (true) or stop with StopNumerics (false). A
// disabled guard records nothing and never escalates (the rounding
// path still skips non-finite heuristics for correctness, but that is
// not accounted as a failure).
func (g *numericGuard) trip() (retry bool) {
	if g.disabled {
		return true
	}
	g.failures++
	g.consecutive++
	if g.consecutive > guardRetries || g.failures >= maxGuardFailures {
		return false
	}
	g.tighten *= 0.5
	return true
}

// maxAbsOrInf returns the maximum absolute value of v, mapping any NaN
// to +Inf so a single comparison against the guard limit detects both
// non-finite entries and magnitude explosion.
func maxAbsOrInf(v []float64, threads int) float64 {
	if parallel.Threads(threads) == 1 {
		return maxAbsOrInfRange(v, 0, len(v))
	}
	return parallel.ReduceFloat64(len(v), threads, func(lo, hi int) float64 {
		return maxAbsOrInfRange(v, lo, hi)
	}, math.Max, 0)
}

func maxAbsOrInfRange(v []float64, lo, hi int) float64 {
	m := 0.0
	for i := lo; i < hi; i++ {
		x := v[i]
		if math.IsNaN(x) {
			return math.Inf(1)
		}
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// finiteVector reports whether every entry of v is finite (serial; for
// the short pre-rounding heuristic checks).
func finiteVector(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// emptyResult returns an AlignResult holding an empty matching — the
// best-so-far of a run cancelled before any rounding completed.
func (p *Problem) emptyResult() *AlignResult {
	mateA := make([]int, p.L.NA)
	for i := range mateA {
		mateA[i] = -1
	}
	mateB := make([]int, p.L.NB)
	for i := range mateB {
		mateB[i] = -1
	}
	return &AlignResult{Matching: matching.NewResult(p.L, mateA, mateB)}
}

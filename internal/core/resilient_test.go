package core_test

// Resilience acceptance tests: cancellation returns the best-so-far
// matching in bounded time, checkpointed runs resume bit for bit, and
// injected NaNs at every named solver step either roll back cleanly or
// stop with StopNumerics — never a NaN objective, never a panic.

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"netalignmc/internal/core"
	"netalignmc/internal/faults"
	"netalignmc/internal/gen"
	"netalignmc/internal/problemio"
)

// syntheticProblem builds a deterministic mid-sized instance: large
// enough that BP has real work per iteration, small enough for fast
// tests.
func syntheticProblem(t testing.TB, n int) *core.Problem {
	t.Helper()
	o := gen.DefaultSynthetic(4, 42)
	o.N = n
	o.Threads = 2
	p, err := gen.Synthetic(o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkValid asserts the invariants every resilient exit must uphold:
// a structurally valid matching and a finite objective.
func checkValid(t *testing.T, p *core.Problem, res *core.AlignResult) {
	t.Helper()
	if res == nil || res.Matching == nil {
		t.Fatal("nil result or matching")
	}
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatalf("invalid matching: %v", err)
	}
	if math.IsNaN(res.Objective) || math.IsInf(res.Objective, 0) {
		t.Fatalf("non-finite objective %g", res.Objective)
	}
}

func TestFaultBPCancelledMidRunReturnsPromptly(t *testing.T) {
	p := syntheticProblem(t, 600)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// An iteration budget that would run for minutes uncancelled.
	res, err := p.BPAlignCtx(ctx, core.BPOptions{Iterations: 1_000_000})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancellation is not an error: %v", err)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("cancelled run took %v, want < 2s", elapsed)
	}
	if res.Stopped != core.StopCancelled {
		t.Fatalf("stopped = %v, want cancelled", res.Stopped)
	}
	checkValid(t, p, res)
}

func TestFaultMRCancelledMidRun(t *testing.T) {
	p := syntheticProblem(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := p.MRAlignCtx(ctx, core.MROptions{Iterations: 1_000_000})
	if err != nil {
		t.Fatalf("cancellation is not an error: %v", err)
	}
	if e := time.Since(start); e >= 2*time.Second {
		t.Fatalf("cancelled run took %v", e)
	}
	if res.Stopped != core.StopCancelled {
		t.Fatalf("stopped = %v", res.Stopped)
	}
	checkValid(t, p, res)
}

func TestFaultBPDeadline(t *testing.T) {
	p := syntheticProblem(t, 400)
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	res, err := p.BPAlignCtx(ctx, core.BPOptions{Iterations: 1_000_000})
	if err != nil {
		t.Fatalf("deadline is not an error: %v", err)
	}
	if res.Stopped != core.StopDeadline {
		t.Fatalf("stopped = %v, want deadline", res.Stopped)
	}
	checkValid(t, p, res)
}

func TestFaultPreCancelledContext(t *testing.T) {
	p := syntheticProblem(t, 60)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := p.BPAlignCtx(ctx, core.BPOptions{Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != core.StopCancelled || res.Iterations != 0 {
		t.Fatalf("stopped=%v iterations=%d", res.Stopped, res.Iterations)
	}
	checkValid(t, p, res)
}

// runBPRecording runs BP with an observer that snapshots each
// iteration's damped y iterate.
func runBPRecording(p *core.Problem, o core.BPOptions) (map[int][]float64, *core.AlignResult) {
	iterates := make(map[int][]float64)
	o.Observer = func(iter int, y, z []float64) {
		iterates[iter] = append([]float64(nil), y...)
	}
	res := p.BPAlign(o)
	return iterates, res
}

func TestBPCheckpointResumeBitIdentical(t *testing.T) {
	p := syntheticProblem(t, 80)
	base := core.BPOptions{Iterations: 12, Threads: 1}

	// Uninterrupted reference run, checkpointing at iteration 6. The
	// checkpoint goes through the problemio serializer, so the test
	// covers the full save/load chain, not just the in-memory structs.
	var saved bytes.Buffer
	ref := base
	ref.CheckpointEvery = 6
	ref.CheckpointFunc = func(c *core.Checkpoint) error {
		if c.Iter == 6 {
			saved.Reset()
			return problemio.WriteCheckpoint(&saved, c)
		}
		return nil
	}
	refIterates, refRes := runBPRecording(p, ref)
	if refRes.Err != nil {
		t.Fatal(refRes.Err)
	}
	if saved.Len() == 0 {
		t.Fatal("checkpoint at iteration 6 never written")
	}

	ck, err := problemio.ReadCheckpoint(bytes.NewReader(saved.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resumed := base
	resumed.Resume = ck
	resIterates, resRes := runBPRecording(p, resumed)
	if resRes.Err != nil {
		t.Fatal(resRes.Err)
	}

	for iter := 7; iter <= 12; iter++ {
		want, got := refIterates[iter], resIterates[iter]
		if want == nil || got == nil {
			t.Fatalf("iteration %d missing (ref %v, resumed %v)", iter, want != nil, got != nil)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("iteration %d, y[%d]: %x vs %x", iter, i, want[i], got[i])
			}
		}
	}
	if _, early := resIterates[6]; early {
		t.Fatal("resumed run re-executed a checkpointed iteration")
	}
	if math.Float64bits(refRes.Objective) != math.Float64bits(resRes.Objective) {
		t.Fatalf("final objectives differ: %v vs %v", refRes.Objective, resRes.Objective)
	}
	if refRes.Matching.Card != resRes.Matching.Card {
		t.Fatalf("final matchings differ: card %d vs %d", refRes.Matching.Card, resRes.Matching.Card)
	}
}

func TestMRCheckpointResumeBitIdentical(t *testing.T) {
	p := syntheticProblem(t, 80)
	base := core.MROptions{Iterations: 12, Threads: 1}

	record := func(o core.MROptions) (map[int][]float64, *core.AlignResult) {
		iterates := make(map[int][]float64)
		o.Observer = func(iter int, wbar []float64, upper, obj float64) {
			iterates[iter] = append([]float64(nil), wbar...)
		}
		res := p.KlauAlign(o)
		return iterates, res
	}

	var saved *core.Checkpoint
	ref := base
	ref.CheckpointEvery = 5
	ref.CheckpointFunc = func(c *core.Checkpoint) error {
		if c.Iter == 5 {
			var buf bytes.Buffer
			if err := problemio.WriteCheckpoint(&buf, c); err != nil {
				return err
			}
			var err error
			saved, err = problemio.ReadCheckpoint(&buf)
			return err
		}
		return nil
	}
	refIterates, refRes := record(ref)
	if refRes.Err != nil {
		t.Fatal(refRes.Err)
	}
	if saved == nil {
		t.Skip("MR converged before iteration 5; nothing to resume")
	}

	resumed := base
	resumed.Resume = saved
	resIterates, resRes := record(resumed)
	if resRes.Err != nil {
		t.Fatal(resRes.Err)
	}
	for iter := 6; iter <= 12; iter++ {
		want, got := refIterates[iter], resIterates[iter]
		if want == nil && got == nil {
			continue // both converged before this iteration
		}
		if (want == nil) != (got == nil) {
			t.Fatalf("iteration %d: ref ran %v, resumed ran %v", iter, want != nil, got != nil)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("iteration %d, wbar[%d]: %x vs %x", iter, i, want[i], got[i])
			}
		}
	}
	if math.Float64bits(refRes.Objective) != math.Float64bits(resRes.Objective) {
		t.Fatalf("final objectives differ: %v vs %v", refRes.Objective, resRes.Objective)
	}
}

func TestResumeRejectsWrongProblem(t *testing.T) {
	p := syntheticProblem(t, 40)
	other := syntheticProblem(t, 50)
	var ck *core.Checkpoint
	res := p.BPAlign(core.BPOptions{
		Iterations:      4,
		CheckpointEvery: 2,
		CheckpointFunc:  func(c *core.Checkpoint) error { ck = c; return nil },
	})
	if res.Err != nil || ck == nil {
		t.Fatalf("checkpointing failed: %v", res.Err)
	}
	// Wrong problem.
	bad, err := other.BPAlignCtx(context.Background(), core.BPOptions{Iterations: 4, Resume: ck})
	if err == nil || bad.Err == nil {
		t.Fatal("checkpoint from a different problem accepted")
	}
	// Wrong method.
	badMR, err := p.MRAlignCtx(context.Background(), core.MROptions{Iterations: 4, Resume: ck})
	if err == nil || badMR.Err == nil {
		t.Fatal("bp checkpoint accepted by mr")
	}
}

// bpSteps are every named BP step a fault can strike.
var bpSteps = []string{
	core.BPStepBoundF, core.BPStepComputeD, core.BPStepOthermax,
	core.BPStepUpdateS, core.BPStepDamping, core.BPStepMatch,
}

func TestFaultBPTransientNaNEachStep(t *testing.T) {
	p := syntheticProblem(t, 60)
	for _, step := range bpSteps {
		step := step
		t.Run(step, func(t *testing.T) {
			plan := faults.NewPlan(11).WithNaN(faults.NaNInjection{
				Step: step, Iter: 3, Count: 2, Once: true,
			})
			res, err := p.BPAlignCtx(context.Background(), core.BPOptions{
				Iterations: 8, Faults: plan,
			})
			if err != nil {
				t.Fatalf("transient fault became an error: %v", err)
			}
			if plan.Strikes() == 0 {
				t.Fatal("fault never struck")
			}
			// A single transient fault must be absorbed: rolled back
			// (or skipped, for the match step) and the run completes.
			if res.Stopped == core.StopNumerics {
				t.Fatalf("transient fault escalated to StopNumerics (failures=%d)", res.NumericFailures)
			}
			if res.NumericFailures == 0 {
				t.Fatal("guard did not record the fault")
			}
			checkValid(t, p, res)
		})
	}
}

func TestFaultBPPersistentNaNEachStep(t *testing.T) {
	p := syntheticProblem(t, 60)
	for _, step := range bpSteps {
		step := step
		t.Run(step, func(t *testing.T) {
			// Persistent: the fault re-strikes when the guard rolls
			// back and retries the iteration, so it must escalate.
			plan := faults.NewPlan(13).WithNaN(faults.NaNInjection{
				Step: step, Iter: 3, Count: 1, Once: false,
			})
			res, err := p.BPAlignCtx(context.Background(), core.BPOptions{
				Iterations: 8, Faults: plan,
			})
			if err != nil {
				t.Fatalf("numerics stop is not an error: %v", err)
			}
			if res.Stopped != core.StopNumerics {
				t.Fatalf("stopped = %v (failures=%d), want numerics", res.Stopped, res.NumericFailures)
			}
			if res.NumericFailures == 0 {
				t.Fatal("no failures recorded")
			}
			checkValid(t, p, res)
		})
	}
}

var mrSteps = []string{
	core.MRStepRowMatch, core.MRStepDaxpy, core.MRStepMatch, core.MRStepUpdateU,
}

func TestFaultMRTransientNaNEachStep(t *testing.T) {
	p := syntheticProblem(t, 60)
	for _, step := range mrSteps {
		step := step
		t.Run(step, func(t *testing.T) {
			plan := faults.NewPlan(17).WithNaN(faults.NaNInjection{
				Step: step, Iter: 2, Count: 2, Once: true,
			})
			res, err := p.MRAlignCtx(context.Background(), core.MROptions{
				Iterations: 8, Faults: plan,
			})
			if err != nil {
				t.Fatalf("transient fault became an error: %v", err)
			}
			if plan.Strikes() == 0 {
				t.Fatal("fault never struck")
			}
			if res.Stopped == core.StopNumerics {
				t.Fatalf("transient fault escalated (failures=%d)", res.NumericFailures)
			}
			checkValid(t, p, res)
		})
	}
}

func TestFaultMRPersistentNaNEachStep(t *testing.T) {
	p := syntheticProblem(t, 60)
	for _, step := range mrSteps {
		step := step
		t.Run(step, func(t *testing.T) {
			plan := faults.NewPlan(19).WithNaN(faults.NaNInjection{
				Step: step, Iter: 2, Count: 1, Once: false,
			})
			res, err := p.MRAlignCtx(context.Background(), core.MROptions{
				Iterations: 8, Faults: plan,
			})
			if err != nil {
				t.Fatalf("numerics stop is not an error: %v", err)
			}
			if res.Stopped != core.StopNumerics {
				t.Fatalf("stopped = %v (failures=%d), want numerics", res.Stopped, res.NumericFailures)
			}
			checkValid(t, p, res)
		})
	}
}

func TestFaultGuardDisabled(t *testing.T) {
	// GuardLimit < 0 disables the guard: the injected NaN flows into
	// the iterates, but the tracker still refuses non-finite
	// objectives, so the final result remains valid — the last line of
	// defense the guard normally keeps from being reached.
	p := syntheticProblem(t, 40)
	plan := faults.NewPlan(23).WithNaN(faults.NaNInjection{
		Step: core.BPStepDamping, Iter: 2, Count: 4, Once: true,
	})
	res := p.BPAlign(core.BPOptions{Iterations: 6, Faults: plan, GuardLimit: -1})
	if res.NumericFailures != 0 {
		t.Fatal("disabled guard recorded failures")
	}
	checkValid(t, p, res)
}

func TestFaultCheckpointFuncFailureStopsRun(t *testing.T) {
	p := syntheticProblem(t, 40)
	boom := bytes.ErrTooLarge // any sentinel error
	res, err := p.BPAlignCtx(context.Background(), core.BPOptions{
		Iterations:      10,
		CheckpointEvery: 3,
		CheckpointFunc:  func(c *core.Checkpoint) error { return boom },
	})
	if err != boom || res.Err != boom {
		t.Fatalf("checkpoint failure not surfaced: %v / %v", err, res.Err)
	}
	if res.Iterations >= 10 {
		t.Fatal("run continued past the failing checkpoint")
	}
	checkValid(t, p, res)
}

func TestStopReasonStrings(t *testing.T) {
	for r, want := range map[core.StopReason]string{
		core.StopMaxIter:   "max-iterations",
		core.StopConverged: "converged",
		core.StopCancelled: "cancelled",
		core.StopDeadline:  "deadline",
		core.StopNumerics:  "numerics",
	} {
		if r.String() != want {
			t.Fatalf("%d.String() = %q", r, r.String())
		}
	}
}

func TestBPAlignCtxNilContext(t *testing.T) {
	p := syntheticProblem(t, 30)
	res, err := p.BPAlignCtx(nil, core.BPOptions{Iterations: 3}) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != core.StopMaxIter {
		t.Fatalf("stopped = %v", res.Stopped)
	}
	checkValid(t, p, res)
}

package core_test

// Property-based tests over randomly generated alignment problems:
// invariants that are theorems of the algorithms, checked with
// testing/quick across seeds, sizes and parameters.

import (
	"math"
	"testing"
	"testing/quick"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
)

func randomProblem(seed int64, nRaw, degRaw uint8) (*core.Problem, error) {
	o := gen.DefaultSynthetic(float64(degRaw%8)+1, seed)
	o.N = int(nRaw)%30 + 10
	o.MaxDeg = 8
	return gen.Synthetic(o)
}

// The MR bound sandwich: every iteration's upper bound dominates its
// rounded objective, and the Lagrangian bound dominates the identity
// alignment's objective.
func TestQuickMRBoundSandwich(t *testing.T) {
	f := func(seed int64, nRaw, degRaw uint8) bool {
		p, err := randomProblem(seed, nRaw, degRaw)
		if err != nil {
			return false
		}
		res := p.KlauAlign(core.MROptions{Iterations: 6, Trace: true})
		idObj := p.Objective(p.IdentityIndicator(), 1)
		minUpper := math.Inf(1)
		for i := range res.Upper {
			if res.Upper[i] < res.Lower[i]-1e-6 {
				return false
			}
			if res.Upper[i] < minUpper {
				minUpper = res.Upper[i]
			}
		}
		return minUpper >= idObj-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Generated problems always verify against the overlap definition.
func TestQuickProblemVerifies(t *testing.T) {
	f := func(seed int64, nRaw, degRaw uint8) bool {
		p, err := randomProblem(seed, nRaw, degRaw)
		if err != nil {
			return false
		}
		return p.Verify(200, nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The returned alignment is always a valid matching whose recorded
// objective decomposes as alpha*weight + beta*overlap, for both
// methods and both matchers.
func TestQuickAlignResultsConsistent(t *testing.T) {
	f := func(seed int64, nRaw, degRaw uint8, useBP, approx bool) bool {
		p, err := randomProblem(seed, nRaw, degRaw)
		if err != nil {
			return false
		}
		var rounding matching.Matcher
		if approx {
			rounding = matching.Approx
		}
		var res *core.AlignResult
		if useBP {
			res = p.BPAlign(core.BPOptions{Iterations: 5, Rounding: rounding})
		} else {
			res = p.KlauAlign(core.MROptions{Iterations: 5, Rounding: rounding})
		}
		if res.Matching.Validate(p.L) != nil {
			return false
		}
		want := p.Alpha*res.MatchWeight + p.Beta*res.Overlap
		return math.Abs(res.Objective-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// BP's tracked best objective is invariant to the rounding batch size
// (batching reorders work, never results).
func TestQuickBPBatchInvariance(t *testing.T) {
	f := func(seed int64, nRaw, degRaw, batchRaw uint8) bool {
		p, err := randomProblem(seed, nRaw, degRaw)
		if err != nil {
			return false
		}
		batch := int(batchRaw)%19 + 2
		a := p.BPAlign(core.BPOptions{Iterations: 6, Batch: 1})
		b := p.BPAlign(core.BPOptions{Iterations: 6, Batch: batch})
		return math.Abs(a.Objective-b.Objective) <= 1e-9*(1+math.Abs(a.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The whole problem is symmetric under swapping the roles of A and B
// (with L transposed): the transposed problem has identical Table II
// statistics and the same optimal matching weight.
func TestQuickProblemTransposeSymmetry(t *testing.T) {
	f := func(seed int64, nRaw, degRaw uint8) bool {
		p, err := randomProblem(seed, nRaw, degRaw)
		if err != nil {
			return false
		}
		flipped := make([]bipartite.WeightedEdge, 0, p.L.NumEdges())
		for e := 0; e < p.L.NumEdges(); e++ {
			flipped = append(flipped, bipartite.WeightedEdge{
				A: p.L.EdgeB[e], B: p.L.EdgeA[e], W: p.L.W[e],
			})
		}
		lt, err := bipartite.New(p.L.NB, p.L.NA, flipped)
		if err != nil {
			return false
		}
		pt, err := core.NewProblem(p.B, p.A, lt, p.Alpha, p.Beta, 1)
		if err != nil {
			return false
		}
		if pt.NNZS() != p.NNZS() {
			return false
		}
		r1 := matching.Exact(p.L, 1)
		r2 := matching.Exact(lt, 1)
		return math.Abs(r1.Weight-r2.Weight) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

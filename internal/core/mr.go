package core

import (
	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
	"netalignmc/internal/sparse"
	"netalignmc/internal/stats"
)

// MR step names, used by the Figure 6 per-step scaling study.
const (
	MRStepRowMatch  = "rowmatch"  // Step 1: one small matching per row of S
	MRStepDaxpy     = "daxpy"     // Step 2: w̄ = αw + d
	MRStepMatch     = "match"     // Step 3: x = bipartite_match(w̄)
	MRStepObjective = "objective" // Step 4: objective and upper bound
	MRStepUpdateU   = "updateU"   // Step 5: multiplier update
)

// MROptions configures Klau's matching-relaxation method (Listing 1).
type MROptions struct {
	// Iterations is n_iter. The paper notes there is no point running
	// beyond 500–1000 iterations; the scaling studies use 400.
	Iterations int
	// Gamma is the initial subgradient step size γ (halved whenever
	// the upper bound stalls for MStep iterations).
	Gamma float64
	// MStep is the stall window before halving γ; the paper's scaling
	// runs use mstep = 10.
	MStep int
	// UBound clamps the Lagrange multipliers to [-UBound, UBound]; 0
	// selects the default β/2.
	UBound float64
	// Threads is the worker count (<= 0 means GOMAXPROCS).
	Threads int
	// Chunk is the dynamic-schedule chunk size (0 = 1000, the value
	// the paper tuned for the imbalanced S-indexed loops).
	Chunk int
	// Sched selects the scheduling policy for the S-indexed loops
	// (default Dynamic, the paper's choice). The scheduling-policy
	// axis substitutes for the paper's NUMA memory-layout axis in the
	// scaling studies; see DESIGN.md §4.
	Sched parallel.Schedule
	// Rounding is the bipartite matcher used in Step 3. nil selects
	// exact matching; pass matching.Approx for the paper's
	// substitution. Step 1's per-row matchings are always exact ("we
	// always use exact matching in the first step... because the
	// problems in each row tend to be small and we parallelize over
	// rows").
	Rounding matching.Matcher
	// GreedyRowMatch replaces the exact per-row matchings of Step 1
	// with the greedy half-approximation. The paper always uses exact
	// row matching ("the problems in each row tend to be small");
	// this option exists to measure that design choice (ablation
	// BenchmarkAblationRowMatch).
	GreedyRowMatch bool
	// GapTolerance, when positive, stops the iteration early once the
	// relative gap between the best upper bound and the best rounded
	// objective falls below it — the paper: "this method can actually
	// detect when it has reached the optimal point, although that will
	// not always occur".
	GapTolerance float64
	// SkipFinalExact disables the final exact rounding of the best
	// heuristic (used by scaling studies, which exclude that step).
	SkipFinalExact bool
	// Timer, when non-nil, accumulates per-step wall time.
	Timer *stats.StepTimer
	// Trace records per-iteration upper and lower bounds.
	Trace bool
	// Observer, when non-nil, is called each iteration with the
	// combined heuristic w̄ (aliasing an internal buffer — copy before
	// retaining), the upper bound w̄ᵀx and the rounded objective.
	Observer func(iter int, wbar []float64, upper, obj float64)
}

func (o *MROptions) defaults(p *Problem) MROptions {
	opts := *o
	if opts.Iterations <= 0 {
		opts.Iterations = 100
	}
	if opts.Gamma <= 0 {
		opts.Gamma = 0.5
	}
	if opts.MStep <= 0 {
		opts.MStep = 10
	}
	if opts.UBound <= 0 {
		opts.UBound = p.Beta / 2
		if opts.UBound == 0 {
			opts.UBound = 0.5
		}
	}
	if opts.Rounding == nil {
		opts.Rounding = matching.Exact
	}
	if opts.Chunk <= 0 {
		opts.Chunk = parallel.DefaultChunk
	}
	return opts
}

// AlignResult is the outcome of an alignment method.
type AlignResult struct {
	// Matching is the returned alignment.
	Matching *matching.Result
	// Objective is α·wᵀx + (β/2)·xᵀSx of Matching.
	Objective float64
	// MatchWeight is wᵀx and Overlap is xᵀSx/2 of Matching — the two
	// axes of the paper's Figure 3.
	MatchWeight float64
	Overlap     float64
	// BestIter is the iteration whose heuristic produced the best
	// rounded objective; Evaluations counts round_heuristic calls.
	BestIter    int
	Iterations  int
	Evaluations int
	// Converged reports that MR stopped early because the bound gap
	// fell below MROptions.GapTolerance; ConvergedIter is the
	// iteration at which that happened.
	Converged     bool
	ConvergedIter int
	// Upper and Lower trace the per-iteration upper bound w̄ᵀx and
	// rounded objective (MR only, with Trace set).
	Upper []float64
	Lower []float64
	// ObjectiveTrace holds every rounded objective in evaluation order
	// (with Trace set).
	ObjectiveTrace []float64
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (p *Problem) finishResult(tr *Tracker, threads int, skipFinal bool) *AlignResult {
	var res *matching.Result
	var obj float64
	if skipFinal {
		if tr.HasBest() {
			res, obj = tr.BestMatching, tr.BestObjective
		} else {
			res = matching.Exact(p.L, threads)
			obj = p.ObjectiveOfMatching(res, threads)
		}
	} else {
		res, obj = p.FinalRound(tr, threads)
	}
	x := res.Indicator(p.L)
	return &AlignResult{
		Matching:    res,
		Objective:   obj,
		MatchWeight: p.MatchWeight(x, threads),
		Overlap:     p.Overlap(x, threads),
		BestIter:    tr.BestIter,
		Evaluations: tr.Evaluations,
	}
}

// KlauAlign runs Klau's iterative matching relaxation (Listing 1).
//
// Each iteration: (1) solve, for every row of S, a small exact
// matching over L weighted by β/2·S + U − Uᵀ, recording the row values
// in d and the selected entries in S_L; (2) form w̄ = αw + d; (3)
// round w̄ to a matching x with the configured matcher; (4) evaluate
// the objective (lower bound) and w̄ᵀx (upper bound); (5) take a
// subgradient step on the multipliers U restricted to the upper
// triangle, clamped to [-UBound, UBound], halving γ when the upper
// bound has not improved for MStep iterations.
func (p *Problem) KlauAlign(o MROptions) *AlignResult {
	opts := o.defaults(p)
	threads, chunk := opts.Threads, opts.Chunk
	sched := opts.Sched
	timer := opts.Timer
	nnz := p.S.NNZ()
	mEL := p.L.NumEdges()

	u := make([]float64, nnz)    // Lagrange multipliers (upper triangle only)
	rowW := make([]float64, nnz) // β/2·S + U − Uᵀ values
	sL := make([]float64, nnz)   // row-matching indicators
	d := make([]float64, mEL)    // row-matching values
	wbar := make([]float64, mEL) // αw + d
	gamma := opts.Gamma
	bestUpper := 0.0
	haveUpper := false
	sinceImproved := 0
	converged := false
	convergedIter := 0
	lastIter := 0

	tr := &Tracker{Trace: opts.Trace}
	result := func() *AlignResult { return p.finishResult(tr, threads, opts.SkipFinalExact) }

	var upperTrace, lowerTrace []float64
	sVal := p.S.Val
	perm := p.SPerm
	beta2 := p.Beta / 2

	// Per-worker row-matching scratch, preallocated outside the
	// iteration (§IV-B: "We precompute the maximum memory required for
	// p threads to run matching problems on the rows of S and
	// preallocate this memory outside of the iteration").
	nWorkers := parallel.Threads(threads)
	rowMatchers := make([]*matching.SubsetMatcher, nWorkers)
	rowSelected := make([][]int, nWorkers)
	for i := range rowMatchers {
		rowMatchers[i] = matching.NewSubsetMatcher(p.L.NA, p.L.NB)
	}

	for iter := 1; iter <= opts.Iterations; iter++ {
		// Step 1: row match.
		timer.Time(MRStepRowMatch, func() {
			sched.For(nnz, threads, chunk, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					rowW[k] = beta2*sVal[k] + u[k] - u[perm[k]]
				}
			})
			// One small exact matching per row; the row problems are
			// tiny and independent, so parallelize across rows with a
			// dynamic schedule (the row sizes are highly imbalanced)
			// and solve each with the worker's preallocated scratch.
			parallel.ForDynamicWorker(p.S.NumRows, threads, chunk, func(worker, lo, hi int) {
				sm := rowMatchers[worker]
				for e1 := lo; e1 < hi; e1++ {
					klo, khi := p.S.RowRange(e1)
					if klo == khi {
						d[e1] = 0
						continue
					}
					var selected []int
					var value float64
					if opts.GreedyRowMatch {
						selected, value = sm.GreedySubset(p.L, p.S.Col[klo:khi], rowW[klo:khi], rowSelected[worker][:0])
					} else {
						selected, value = sm.Solve(p.L, p.S.Col[klo:khi], rowW[klo:khi], rowSelected[worker][:0])
					}
					rowSelected[worker] = selected
					for k := klo; k < khi; k++ {
						sL[k] = 0
					}
					for _, pos := range selected {
						sL[klo+pos] = 1
					}
					d[e1] = value
				}
			})
		})

		// Step 2: daxpy.
		timer.Time(MRStepDaxpy, func() {
			w := p.L.W
			parallel.ForStatic(mEL, threads, func(lo, hi int) {
				for e := lo; e < hi; e++ {
					wbar[e] = p.Alpha*w[e] + d[e]
				}
			})
		})

		// Step 3: match.
		var res *matching.Result
		timer.Time(MRStepMatch, func() {
			lw, err := p.L.WithWeights(wbar)
			if err != nil {
				panic("core: w̄ length mismatch: " + err.Error())
			}
			matched := opts.Rounding(lw, threads)
			res = matching.NewResult(p.L, matched.MateA, matched.MateB)
		})

		// Step 4: objective (lower bound) and upper bound.
		var x []float64
		var obj, upper float64
		timer.Time(MRStepObjective, func() {
			x = res.Indicator(p.L)
			obj = p.Objective(x, threads)
			tr.Offer(iter, obj, res, wbar)
			upper = parallel.SumFloat64(mEL, threads, func(lo, hi int) float64 {
				s := 0.0
				for e := lo; e < hi; e++ {
					s += wbar[e] * x[e]
				}
				return s
			})
			if opts.Trace {
				upperTrace = append(upperTrace, upper)
				lowerTrace = append(lowerTrace, obj)
			}
			// Subgradient step control: halve γ when the upper bound
			// has not improved (decreased) within MStep iterations.
			if !haveUpper || upper < bestUpper-1e-12 {
				haveUpper = true
				bestUpper = upper
				sinceImproved = 0
			} else {
				sinceImproved++
				if sinceImproved >= opts.MStep {
					gamma /= 2
					sinceImproved = 0
				}
			}
		})

		// Step 5: update U on the upper triangle:
		// F = U − γ·X·triu(S_L) + γ·tril(S_L)ᵀ·X, clamped.
		timer.Time(MRStepUpdateU, func() {
			sRow := p.SRow
			sCol := p.S.Col
			bound := opts.UBound
			g := gamma
			sched.For(nnz, threads, chunk, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					e1, e2 := sRow[k], sCol[k]
					if e2 <= e1 {
						continue // multipliers live on the upper triangle
					}
					f := u[k] - g*x[e1]*sL[k] + g*sL[perm[k]]*x[e2]
					u[k] = sparse.Bound(f, -bound, bound)
				}
			})
		})

		if opts.Observer != nil {
			opts.Observer(iter, wbar, upper, obj)
		}

		lastIter = iter
		// Optimality detection: the best rounded objective is a lower
		// bound and bestUpper an upper bound on the optimum; a closed
		// gap proves the tracked solution optimal.
		if lower, ok := tr.Best(); opts.GapTolerance > 0 && haveUpper && ok {
			if bestUpper-lower <= opts.GapTolerance*(1+absf(lower)) {
				converged = true
				convergedIter = iter
				break
			}
		}
	}

	out := result()
	out.Iterations = lastIter
	out.Converged = converged
	out.ConvergedIter = convergedIter
	out.Upper = upperTrace
	out.Lower = lowerTrace
	if opts.Trace {
		out.ObjectiveTrace = append([]float64(nil), tr.Objective...)
	}
	return out
}

package core

import (
	"context"

	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
	"netalignmc/internal/sparse"
	"netalignmc/internal/stats"
)

// MR step names, used by the Figure 6 per-step scaling study.
const (
	MRStepRowMatch  = "rowmatch"  // Step 1: one small matching per row of S
	MRStepDaxpy     = "daxpy"     // Step 2: w̄ = αw + d
	MRStepMatch     = "match"     // Step 3: x = bipartite_match(w̄)
	MRStepObjective = "objective" // Step 4: objective and upper bound
	MRStepUpdateU   = "updateU"   // Step 5: multiplier update
)

// MROptions configures Klau's matching-relaxation method (Listing 1).
type MROptions struct {
	// Iterations is n_iter. The paper notes there is no point running
	// beyond 500–1000 iterations; the scaling studies use 400.
	Iterations int
	// Gamma is the initial subgradient step size γ (halved whenever
	// the upper bound stalls for MStep iterations).
	Gamma float64
	// MStep is the stall window before halving γ; the paper's scaling
	// runs use mstep = 10.
	MStep int
	// UBound clamps the Lagrange multipliers to [-UBound, UBound]; 0
	// selects the default β/2.
	UBound float64
	// Threads is the worker count (<= 0 means GOMAXPROCS).
	Threads int
	// Chunk is the dynamic-schedule chunk size (0 = 1000, the value
	// the paper tuned for the imbalanced S-indexed loops).
	Chunk int
	// Sched selects the scheduling policy for the S-indexed loops
	// (default Dynamic, the paper's choice). The scheduling-policy
	// axis substitutes for the paper's NUMA memory-layout axis in the
	// scaling studies; see DESIGN.md §4. Sched only applies under
	// PartitionChunked: the default balanced partition replaces
	// chunked scheduling entirely.
	Sched parallel.Schedule
	// Partition selects how the parallel loops split their index
	// spaces: PartitionBalanced (default) precomputes contiguous
	// per-worker ranges of near-equal nonzero count once per problem;
	// PartitionChunked restores the legacy chunked schedules. The
	// iterates and the result are bit-identical either way.
	Partition Partition
	// NoPool disables the per-run persistent worker pool, making every
	// parallel region spawn goroutines as earlier versions did. Output
	// is identical; the option exists for the scheduling studies and
	// as an escape hatch.
	NoPool bool
	// Rounding is the bipartite matcher used in Step 3. nil selects
	// exact matching; pass matching.Approx for the paper's
	// substitution. Step 1's per-row matchings are always exact ("we
	// always use exact matching in the first step... because the
	// problems in each row tend to be small and we parallelize over
	// rows").
	//
	// Deprecated: set Matcher instead. A non-nil Rounding still wins
	// for compatibility, but it forfeits the reusable matcher scratch
	// (the solver cannot see inside a func value), so Step 3 allocates
	// every iteration.
	Rounding matching.Matcher
	// Matcher declaratively selects the Step 3 matcher (the zero value
	// is exact matching, preserving the historical default). The
	// solver builds one reusable matcher from it, which is what makes
	// the steady-state rounding allocation-free.
	Matcher matching.MatcherSpec
	// Workspace supplies reusable solver buffers; nil allocates a
	// private one for the solve. Handing the same workspace to
	// successive solves on same-shaped problems removes the per-solve
	// buffer allocations too. A workspace serves one solve at a time.
	Workspace *Workspace
	// GreedyRowMatch replaces the exact per-row matchings of Step 1
	// with the greedy half-approximation. The paper always uses exact
	// row matching ("the problems in each row tend to be small");
	// this option exists to measure that design choice (ablation
	// BenchmarkAblationRowMatch).
	GreedyRowMatch bool
	// GapTolerance, when positive, stops the iteration early once the
	// relative gap between the best upper bound and the best rounded
	// objective falls below it — the paper: "this method can actually
	// detect when it has reached the optimal point, although that will
	// not always occur".
	GapTolerance float64
	// SkipFinalExact disables the final exact rounding of the best
	// heuristic (used by scaling studies, which exclude that step).
	SkipFinalExact bool
	// Timer, when non-nil, accumulates per-step wall time.
	Timer *stats.StepTimer
	// Trace records per-iteration upper and lower bounds.
	Trace bool
	// Observer, when non-nil, is called each iteration with the
	// combined heuristic w̄ (aliasing an internal buffer — copy before
	// retaining), the upper bound w̄ᵀx and the rounded objective.
	Observer func(iter int, wbar []float64, upper, obj float64)

	// Resume, when non-nil, restores the solver state from a
	// checkpoint of a previous run on the same problem with the same
	// options; the run continues at iteration Resume.Iter+1 and is bit
	// identical to the uninterrupted run.
	Resume *Checkpoint
	// CheckpointEvery, when positive with CheckpointFunc set, snapshots
	// the run every that many iterations.
	CheckpointEvery int
	// CheckpointFunc receives each snapshot; returning an error stops
	// the run and surfaces through AlignResult.Err.
	CheckpointFunc func(*Checkpoint) error
	// GuardLimit is the numeric guard's magnitude explosion threshold:
	// 0 selects the default (1e100), negative disables the guard.
	GuardLimit float64
	// Faults, when non-nil, corrupts step outputs for robustness tests
	// (see internal/faults). Production runs leave it nil.
	Faults FaultInjector
}

func (o *MROptions) defaults(p *Problem) MROptions {
	opts := *o
	if opts.Iterations <= 0 {
		opts.Iterations = 100
	}
	if opts.Gamma <= 0 {
		opts.Gamma = 0.5
	}
	if opts.MStep <= 0 {
		opts.MStep = 10
	}
	if opts.UBound <= 0 {
		opts.UBound = p.Beta / 2
		if opts.UBound == 0 {
			opts.UBound = 0.5
		}
	}
	if opts.Chunk <= 0 {
		opts.Chunk = parallel.DefaultChunk
	}
	return opts
}

// AlignResult is the outcome of an alignment method.
type AlignResult struct {
	// Matching is the returned alignment.
	Matching *matching.Result
	// Objective is α·wᵀx + (β/2)·xᵀSx of Matching.
	Objective float64
	// MatchWeight is wᵀx and Overlap is xᵀSx/2 of Matching — the two
	// axes of the paper's Figure 3.
	MatchWeight float64
	Overlap     float64
	// BestIter is the iteration whose heuristic produced the best
	// rounded objective; Evaluations counts round_heuristic calls.
	BestIter    int
	Iterations  int
	Evaluations int
	// Converged reports that MR stopped early because the bound gap
	// fell below MROptions.GapTolerance; ConvergedIter is the
	// iteration at which that happened.
	Converged     bool
	ConvergedIter int
	// Stopped records why the run ended (StopMaxIter for a run that
	// exhausted its iteration budget — the zero value, so results from
	// the non-context API read the same as before).
	Stopped StopReason
	// NumericFailures counts numeric-guard trips (rollbacks plus the
	// final recurring failure if the run stopped with StopNumerics).
	NumericFailures int
	// Err records a resilience failure surfaced through the old
	// non-error API: a mismatched Resume checkpoint, a failing
	// CheckpointFunc, or an internal invariant violation that was a
	// panic in earlier versions. The context API also returns it.
	Err error
	// Upper and Lower trace the per-iteration upper bound w̄ᵀx and
	// rounded objective (MR only, with Trace set).
	Upper []float64
	Lower []float64
	// ObjectiveTrace holds every rounded objective in evaluation order
	// (with Trace set).
	ObjectiveTrace []float64
	// Pipeline is the overlap accounting of a pipelined solve (see
	// Options.Pipeline); nil when the pipeline was off or did not
	// engage.
	Pipeline *PipelineReport
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (p *Problem) finishResult(tr *Tracker, threads int, skipFinal bool) (*AlignResult, error) {
	var res *matching.Result
	var obj float64
	if skipFinal {
		if tr.HasBest() {
			res, obj = tr.BestMatching, tr.BestObjective
		} else {
			res = matching.Exact(p.L, threads)
			obj = p.ObjectiveOfMatching(res, threads)
		}
	} else {
		var err error
		res, obj, err = p.FinalRound(tr, threads)
		if err != nil {
			return p.emptyResult(), err
		}
	}
	x := res.Indicator(p.L)
	return &AlignResult{
		Matching:    res,
		Objective:   obj,
		MatchWeight: p.MatchWeight(x, threads),
		Overlap:     p.Overlap(x, threads),
		BestIter:    tr.BestIter,
		Evaluations: tr.Evaluations,
	}, nil
}

// KlauAlign runs Klau's iterative matching relaxation (Listing 1) to
// completion; it is the context-free form. Errors from the resilience
// options are reported via AlignResult.Err.
//
// Deprecated: KlauAlign is a thin wrapper over Problem.Align; new code
// should call Align with Options{Method: MethodMR}.
func (p *Problem) KlauAlign(o MROptions) *AlignResult {
	res, _ := p.Align(context.Background(), Options{Method: MethodMR, MR: o})
	return res
}

// MRAlignCtx runs Klau's iterative matching relaxation (Listing 1)
// under a context.
//
// Deprecated: MRAlignCtx is a thin wrapper over Problem.Align; new
// code should call Align with Options{Method: MethodMR}.
func (p *Problem) MRAlignCtx(ctx context.Context, o MROptions) (*AlignResult, error) {
	return p.Align(ctx, Options{Method: MethodMR, MR: o})
}

// mrAlign runs Klau's iterative matching relaxation (Listing 1) under a
// context.
//
// Each iteration: (1) solve, for every row of S, a small exact
// matching over L weighted by β/2·S + U − Uᵀ, recording the row values
// in d and the selected entries in S_L; (2) form w̄ = αw + d; (3)
// round w̄ to a matching x with the configured matcher; (4) evaluate
// the objective (lower bound) and w̄ᵀx (upper bound); (5) take a
// subgradient step on the multipliers U restricted to the upper
// triangle, clamped to [-UBound, UBound], halving γ when the upper
// bound has not improved for MStep iterations.
//
// Cancelling the context stops the run mid-iteration in bounded time,
// returning the best matching found so far with Stopped set to
// StopCancelled or StopDeadline. The numeric guard checks w̄ before
// rounding and the multipliers after each subgradient step; a failing
// iteration rolls back to the last good multipliers with a tightened
// step size, and a recurring failure stops with StopNumerics.
//
// Vectors come from the workspace and the kernel closures are created
// once before the loop (a closure handed to the parallel constructs
// escapes), so steady-state iterations perform no heap allocations at
// Threads=1.
func (p *Problem) mrAlign(ctx context.Context, o MROptions, po PipelineOptions, ro ReorderOptions) (*AlignResult, error) {
	opts := o.defaults(p)
	threads, chunk := opts.Threads, opts.Chunk
	sched := opts.Sched
	timer := opts.Timer
	nnz := p.S.NNZ()
	mEL := p.L.NumEdges()
	total := parallel.Threads(threads)
	serial := total == 1

	tr := &Tracker{Trace: opts.Trace}
	guard := newNumericGuard(opts.GuardLimit)

	// The reordered storage view of S (nil = canonical order). Every
	// nnz-indexed kernel below reads S through the view's arrays; edge
	// vectors and all outputs stay canonical.
	view, err := p.reorderViewFor(ro)
	if err != nil {
		res := p.emptyResult()
		res.Err = err
		return res, err
	}

	// MR defers only step 4's objective evaluation and tracker offer to
	// the pipeline, so anything that reads them inside the loop — the
	// gap test, an observer, the bound traces — keeps the barrier path
	// (same bits either way).
	pipelined := po.Enabled && !serial && opts.Faults == nil &&
		opts.GapTolerance <= 0 && opts.Observer == nil && !opts.Trace
	pcfg := po.withDefaults(total)
	nSlots := 1
	if pipelined {
		nSlots = 1 + pcfg.Depth
	}

	ws := opts.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.ensureMR(mEL, nnz)
	key, mk := matcherFactory(opts.Rounding, opts.Matcher)
	if err := ws.ensureRound(p, key, mk, nSlots); err != nil {
		res := p.emptyResult()
		res.Err = err
		return res, err
	}
	mrS := ws.slots[0]
	// The run's parallel-region dispatcher: a persistent worker pool
	// plus the per-problem nnz-balanced partitions cached in the
	// workspace. With the pipeline on, the sweeps run on the workers
	// the collector does not use; every dispatched loop is thread-count
	// invariant, so shrinking the sweep budget changes no bits.
	execThreads := threads
	if pipelined {
		execThreads = total - pcfg.MatchWorkers
		if execThreads < 1 {
			execThreads = 1
		}
	}
	e := newExec(p, ws, execThreads, chunk, sched, opts.Partition, opts.NoPool, view)
	defer e.close()

	u := ws.u       // Lagrange multipliers (upper triangle only)
	rowW := ws.rowW // β/2·S + U − Uᵀ values
	sL := ws.sL     // row-matching indicators
	d := ws.d       // row-matching values
	wbar := ws.wbar // αw + d
	zeroFloat64(u, rowW, sL, d, wbar)
	gamma := opts.Gamma
	bestUpper := 0.0
	haveUpper := false
	sinceImproved := 0
	converged := false
	convergedIter := 0
	startIter := 1
	if opts.Resume != nil {
		if err := opts.Resume.Validate(p, "mr"); err != nil {
			res := p.emptyResult()
			res.Err = err
			return res, err
		}
		// Checkpoints carry U in canonical nonzero order; gather it into
		// this run's storage order (identity without a view), so
		// resuming under different reorder settings is bit-identical.
		view.gather(u, opts.Resume.U)
		gamma = opts.Resume.Gamma
		bestUpper = opts.Resume.BestUpper
		haveUpper = opts.Resume.HaveUpper
		sinceImproved = opts.Resume.SinceImproved
		guard.tighten = opts.Resume.Tighten
		if guard.tighten == 0 {
			guard.tighten = 1
		}
		guard.failures = opts.Resume.Failures
		opts.Resume.restoreTracker(p, tr)
		startIter = opts.Resume.Iter + 1
	}
	lastIter := startIter - 1

	// Last-good snapshots for the numeric guard's rollback: the
	// multipliers plus the subgradient step-control scalars they were
	// produced under.
	goodU := ws.goodU
	copy(goodU, u)
	goodGamma := gamma
	goodBestUpper := bestUpper
	goodHaveUpper := haveUpper
	goodSinceImproved := sinceImproved

	var upperTrace, lowerTrace []float64
	sVal := p.S.Val
	perm := p.SPerm
	beta2 := p.Beta / 2
	w := p.L.W
	alpha := p.Alpha
	sRow := p.SRow
	sCol := p.S.Col
	bound := opts.UBound
	// With a reorder view, the nnz-indexed arrays switch to the
	// reordered storage (perm, sRow and sCol are pre-composed or
	// canonical so kernels keep indexing canonical edge vectors), and
	// the row loop walks rows in storage order with rowOf mapping back
	// to the canonical row for the d accesses.
	sMat := p.S
	var rowOf []int
	if view != nil {
		sVal, perm, sRow, sCol = view.s.Val, view.perm, view.sRow, view.s.Col
		sMat = view.s
		rowOf = view.rows
	}

	// Per-worker row-matching scratch, preallocated outside the
	// iteration (§IV-B: "We precompute the maximum memory required for
	// p threads to run matching problems on the rows of S and
	// preallocate this memory outside of the iteration"). Sized by the
	// dispatcher's worker-id bound — not Threads, which overestimates
	// when S has fewer chunks than threads (the scratch-sizing
	// contract; see exec.rowWorkers).
	nWorkers := e.rowWorkers(p.S.NumRows)
	rowMatchers := make([]*matching.SubsetMatcher, nWorkers)
	rowSelected := make([][]int, nWorkers)
	for i := range rowMatchers {
		rowMatchers[i] = matching.NewSubsetMatcher(p.L.NA, p.L.NB)
	}

	stopped := StopMaxIter
	var runErr error

	rollback := func() {
		copy(u, goodU)
		gamma = goodGamma
		bestUpper = goodBestUpper
		haveUpper = goodHaveUpper
		sinceImproved = goodSinceImproved
	}

	// Per-iteration state read by the hoisted kernels below. The
	// closures are created once — handing a fresh closure to the
	// parallel constructs every iteration would heap-allocate on the
	// hot path — and see updates through these captured variables.
	var iter int
	var x []float64
	var obj, upper float64
	var gU float64 // γ·tighten, fixed before the Step 5 sweep

	// With the pipeline on, step 4's objective and offer run on the
	// collector goroutine (one slot per batch) while the loop proceeds
	// to the multiplier update and the next iteration's sweeps.
	var pipe *roundingPipeline
	if pipelined {
		work := func(s *roundSlot) {
			s.obj = p.slotObjective(s, s.threads)
			s.ok = true
		}
		pipe = newRoundingPipeline(ctx, tr, timer, ws.slots[1:nSlots], 1,
			pcfg, total, MRStepObjective, StepObjectiveOverlap, work)
		defer pipe.close()
	}

	rowWKernel := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			rowW[k] = beta2*sVal[k] + u[k] - u[perm[k]]
		}
	}
	// One small exact matching per row; the row problems are tiny and
	// independent, so parallelize across rows with a dynamic schedule
	// (the row sizes are highly imbalanced) and solve each with the
	// worker's preallocated scratch.
	rowMatchKernel := func(worker, lo, hi int) {
		sm := rowMatchers[worker]
		for e1 := lo; e1 < hi; e1++ {
			klo, khi := sMat.RowRange(e1)
			r := e1
			if rowOf != nil {
				r = rowOf[e1]
			}
			if klo == khi {
				d[r] = 0
				continue
			}
			var selected []int
			var value float64
			if opts.GreedyRowMatch {
				selected, value = sm.GreedySubset(p.L, sMat.Col[klo:khi], rowW[klo:khi], rowSelected[worker][:0])
			} else {
				selected, value = sm.Solve(p.L, sMat.Col[klo:khi], rowW[klo:khi], rowSelected[worker][:0])
			}
			rowSelected[worker] = selected
			for k := klo; k < khi; k++ {
				sL[k] = 0
			}
			for _, pos := range selected {
				sL[klo+pos] = 1
			}
			d[r] = value
		}
	}
	daxpyKernel := func(lo, hi int) {
		for e := lo; e < hi; e++ {
			wbar[e] = alpha*w[e] + d[e]
		}
	}
	upperKernel := func(lo, hi int) float64 {
		s := 0.0
		for e := lo; e < hi; e++ {
			s += wbar[e] * x[e]
		}
		return s
	}
	// Step 5: update U on the upper triangle:
	// F = U − γ·X·triu(S_L) + γ·tril(S_L)ᵀ·X, clamped. The guard's
	// tighten factor (< 1 after a numeric rollback) shrinks the
	// subgradient step.
	updateUKernel := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			e1, e2 := sRow[k], sCol[k]
			if e2 <= e1 {
				continue // multipliers live on the upper triangle
			}
			f := u[k] - gU*x[e1]*sL[k] + gU*sL[perm[k]]*x[e2]
			u[k] = sparse.Bound(f, -bound, bound)
		}
	}
	step1 := func() {
		e.forNNZ(ctx, nnz, rowWKernel)
		e.forSRowsWorker(p.S.NumRows, rowMatchKernel)
	}
	step2 := func() { e.forEdges(mEL, daxpyKernel) }
	// Step 3: match w̄ on L's structure with the slot's reusable
	// matcher, then re-base the matching on L's true weights.
	step3 := func() {
		mrS.lw.W = wbar
		mrS.match(&mrS.lw, threads, &mrS.res)
		mrS.res.Rescore(p.L)
	}
	step4 := func() {
		x = mrS.res.IndicatorInto(p.L, mrS.x)
		mrS.x = x
		if pipe != nil {
			// Snapshot the iterate into the ring slot and defer the
			// objective + offer. The slot's nested budget (fixed at
			// submit; one task gets the whole budget) makes the
			// deferred reduction's partition — hence its bits — match
			// the inline evaluation's.
			s := pipe.cur.slots[0]
			s.iter = iter
			s.heur = growFloat64(s.heur, mEL)
			copy(s.heur, wbar)
			s.x = growFloat64(s.x, mEL)
			copy(s.x, x)
			s.res.CopyFrom(&mrS.res)
			pipe.submit(1)
		} else {
			obj = p.slotObjective(mrS, threads)
			tr.Offer(iter, obj, &mrS.res, wbar)
		}
		upper = parallel.SumFloat64(mEL, threads, upperKernel)
		if opts.Trace {
			upperTrace = append(upperTrace, upper)
			lowerTrace = append(lowerTrace, obj)
		}
		// Subgradient step control: halve γ when the upper bound
		// has not improved (decreased) within MStep iterations.
		if !haveUpper || upper < bestUpper-1e-12 {
			haveUpper = true
			bestUpper = upper
			sinceImproved = 0
		} else {
			sinceImproved++
			if sinceImproved >= opts.MStep {
				gamma /= 2
				sinceImproved = 0
			}
		}
	}
	step5 := func() { e.forNNZ(ctx, nnz, updateUKernel) }

	iter = startIter
	for iter <= opts.Iterations {
		if err := ctx.Err(); err != nil {
			stopped = stopReasonForCtx(err)
			break
		}
		// Step 1: row match.
		timer.Time(MRStepRowMatch, step1)
		if opts.Faults != nil {
			opts.Faults.CorruptVector(MRStepRowMatch, iter, d)
		}

		// Step 2: daxpy.
		timer.Time(MRStepDaxpy, step2)
		if opts.Faults != nil {
			opts.Faults.CorruptVector(MRStepDaxpy, iter, wbar)
			opts.Faults.CorruptVector(MRStepMatch, iter, wbar)
		}

		if err := ctx.Err(); err != nil {
			stopped = stopReasonForCtx(err)
			break
		}

		// Numeric guard: w̄ is the product of the multipliers and the
		// row matchings, so one scan here catches NaN/Inf or explosion
		// from either before it reaches the matcher, the tracker, or
		// the subgradient control.
		if !guard.ok(threads, wbar) {
			if guard.trip() {
				rollback()
				continue
			}
			stopped = StopNumerics
			break
		}

		timer.Time(MRStepMatch, step3)

		// Step 4: objective (lower bound) and upper bound.
		timer.Time(MRStepObjective, step4)

		gU = gamma * guard.tighten
		timer.Time(MRStepUpdateU, step5)
		if opts.Faults != nil {
			opts.Faults.CorruptVector(MRStepUpdateU, iter, u)
		}

		if err := ctx.Err(); err != nil {
			stopped = stopReasonForCtx(err)
			break
		}

		// Numeric guard on the updated multipliers.
		if !guard.ok(threads, u) {
			if guard.trip() {
				rollback()
				continue
			}
			rollback()
			stopped = StopNumerics
			break
		}
		guard.clean()
		copy(goodU, u)
		goodGamma = gamma
		goodBestUpper = bestUpper
		goodHaveUpper = haveUpper
		goodSinceImproved = sinceImproved

		if opts.Observer != nil {
			opts.Observer(iter, wbar, upper, obj)
		}

		lastIter = iter

		if opts.CheckpointEvery > 0 && opts.CheckpointFunc != nil && iter%opts.CheckpointEvery == 0 {
			if pipe != nil {
				pipe.drain() // the snapshot's tracker must cover every offer so far
			}
			ck := &Checkpoint{
				Method: "mr",
				Iter:   iter,
				// U is serialized in canonical nonzero order regardless
				// of the run's storage layout, so checkpoint bytes (and
				// resumes) are identical across reorder settings.
				U:             view.canonicalCopy(u),
				Gamma:         gamma,
				BestUpper:     bestUpper,
				HaveUpper:     haveUpper,
				SinceImproved: sinceImproved,
				Tighten:       guard.tighten,
				Failures:      guard.failures,
			}
			ck.fingerprint(p)
			ck.captureTracker(tr)
			if err := opts.CheckpointFunc(ck); err != nil {
				runErr = err
				break
			}
		}

		// Optimality detection: the best rounded objective is a lower
		// bound and bestUpper an upper bound on the optimum; a closed
		// gap proves the tracked solution optimal.
		if lower, ok := tr.Best(); opts.GapTolerance > 0 && haveUpper && ok {
			if bestUpper-lower <= opts.GapTolerance*(1+absf(lower)) {
				converged = true
				convergedIter = iter
				stopped = StopConverged
				break
			}
		}
		iter++
	}

	cancelled := stopped == StopCancelled || stopped == StopDeadline
	var pipeReport *PipelineReport
	if pipe != nil {
		// Wait for in-flight offers (they land in submit order), then
		// retire the collector before the final exact rounding.
		pipe.drain()
		pipe.close()
		pipeReport = pipe.report()
	}
	var out *AlignResult
	if cancelled && !tr.HasBest() {
		out = p.emptyResult()
	} else {
		var err error
		out, err = p.finishResult(tr, threads, opts.SkipFinalExact || cancelled)
		if err != nil && runErr == nil {
			runErr = err
		}
	}
	out.Iterations = lastIter
	out.Converged = converged
	out.ConvergedIter = convergedIter
	out.Stopped = stopped
	out.NumericFailures = guard.failures
	out.Pipeline = pipeReport
	out.Err = runErr
	out.Upper = upperTrace
	out.Lower = lowerTrace
	if opts.Trace {
		out.ObjectiveTrace = append([]float64(nil), tr.Objective...)
	}
	return out, runErr
}

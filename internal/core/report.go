package core

import (
	"fmt"
	"strings"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/graph"
	"netalignmc/internal/matching"
)

// Report summarizes an alignment the way a practitioner inspects one:
// objective decomposition, matching statistics, the overlapped edge
// pairs, and — when a reference alignment is known (the planted truth
// of synthetic problems, or a curated alignment) — precision and
// recall against it. It backs the computational-steering workflow of
// Section IX, where a human evaluates solutions and adjusts inputs.
type Report struct {
	Objective   float64
	MatchWeight float64
	Overlap     float64
	Card        int
	UnmatchedA  int
	UnmatchedB  int

	// Precision and Recall are against the reference (NaN-free; zero
	// when no reference was supplied or it is empty).
	Precision float64
	Recall    float64

	// EdgeCorrectness is the standard network-alignment quality metric
	// EC = (# overlapped edges) / min(|E_A|, |E_B|) ∈ [0, 1].
	EdgeCorrectness float64

	// Stopped and NumericFailures carry the run's stop reason and
	// numeric-guard trip count when the report was built from an
	// AlignResult (NewReportFromResult); HasRun marks that case so a
	// plain matching report does not render a misleading
	// "max-iterations" line.
	HasRun          bool
	Stopped         StopReason
	NumericFailures int

	// OverlappedPairs lists, for each overlapped pair of graph edges,
	// the two L-edges realizing it (each unordered pair once).
	OverlappedPairs [][2]int
}

// NewReport builds a report for a matching; reference may be nil.
func (p *Problem) NewReport(r *matching.Result, reference *matching.Result, threads int) *Report {
	x := r.Indicator(p.L)
	rep := &Report{
		Objective:   p.Objective(x, threads),
		MatchWeight: p.MatchWeight(x, threads),
		Overlap:     p.Overlap(x, threads),
		Card:        r.Card,
	}
	for _, b := range r.MateA {
		if b < 0 {
			rep.UnmatchedA++
		}
	}
	for _, a := range r.MateB {
		if a < 0 {
			rep.UnmatchedB++
		}
	}
	minEdges := p.A.NumEdges()
	if be := p.B.NumEdges(); be < minEdges {
		minEdges = be
	}
	if minEdges > 0 {
		rep.EdgeCorrectness = rep.Overlap / float64(minEdges)
	}
	// Enumerate overlapped pairs via the nonzeros of S under x.
	for e1 := 0; e1 < p.S.NumRows; e1++ {
		if x[e1] == 0 {
			continue
		}
		lo, hi := p.S.RowRange(e1)
		for k := lo; k < hi; k++ {
			e2 := p.S.Col[k]
			if e2 > e1 && x[e2] != 0 {
				rep.OverlappedPairs = append(rep.OverlappedPairs, [2]int{e1, e2})
			}
		}
	}
	if reference != nil {
		refPairs := 0
		hit := 0
		for a, b := range reference.MateA {
			if b < 0 {
				continue
			}
			refPairs++
			if a < len(r.MateA) && r.MateA[a] == b {
				hit++
			}
		}
		if rep.Card > 0 {
			rep.Precision = float64(hit) / float64(rep.Card)
		}
		if refPairs > 0 {
			rep.Recall = float64(hit) / float64(refPairs)
		}
	}
	return rep
}

// NewReportFromResult builds a report for an alignment run, carrying
// the run's stop reason and numeric-guard activity alongside the
// matching quality metrics.
func (p *Problem) NewReportFromResult(res *AlignResult, reference *matching.Result, threads int) *Report {
	rep := p.NewReport(res.Matching, reference, threads)
	rep.HasRun = true
	rep.Stopped = res.Stopped
	rep.NumericFailures = res.NumericFailures
	return rep
}

// ConservedSubgraph builds the subgraph of A induced by the overlapped
// edges — the "conserved" structure both networks share under the
// alignment, which is the object of interest in the bioinformatics
// applications (conserved interaction pathways). The returned graph
// has A's vertex set; its edges are exactly the A-edges realized by
// OverlappedPairs.
func (rep *Report) ConservedSubgraph(p *Problem) *graph.Graph {
	b := graph.NewBuilder(p.A.NumVertices())
	for _, pair := range rep.OverlappedPairs {
		i := p.L.EdgeA[pair[0]]
		j := p.L.EdgeA[pair[1]]
		if i != j && p.A.HasEdge(i, j) {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// String renders the report.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "objective    %.4f\n", rep.Objective)
	fmt.Fprintf(&b, "match weight %.4f\n", rep.MatchWeight)
	fmt.Fprintf(&b, "overlap      %.0f edge pairs\n", rep.Overlap)
	fmt.Fprintf(&b, "matched      %d (unmatched A: %d, B: %d)\n", rep.Card, rep.UnmatchedA, rep.UnmatchedB)
	fmt.Fprintf(&b, "edge corr.   %.3f\n", rep.EdgeCorrectness)
	if rep.Precision > 0 || rep.Recall > 0 {
		fmt.Fprintf(&b, "precision    %.3f\n", rep.Precision)
		fmt.Fprintf(&b, "recall       %.3f\n", rep.Recall)
	}
	if rep.HasRun {
		fmt.Fprintf(&b, "stopped      %s\n", rep.Stopped)
		if rep.NumericFailures > 0 {
			fmt.Fprintf(&b, "numeric guard tripped %d time(s)\n", rep.NumericFailures)
		}
	}
	return b.String()
}

// RemoveCandidates returns a new problem whose candidate graph L lacks
// the given edges (by canonical edge index), rebuilding S. It is the
// steering primitive of Section IX: "users may want to fix certain
// problematic alignments by removing potential matches from L and
// recompute".
func (p *Problem) RemoveCandidates(edges []int, threads int) (*Problem, error) {
	drop := make(map[int]bool, len(edges))
	for _, e := range edges {
		if e < 0 || e >= p.L.NumEdges() {
			return nil, fmt.Errorf("core: candidate edge %d out of range", e)
		}
		drop[e] = true
	}
	kept := make([]int, 0, p.L.NumEdges()-len(drop))
	for e := 0; e < p.L.NumEdges(); e++ {
		if !drop[e] {
			kept = append(kept, e)
		}
	}
	return p.keepCandidates(kept, threads)
}

// PinCandidates returns a new problem where the given L-edges are the
// only candidates incident to their endpoints (the complementary
// steering move: lock an alignment in by removing its competitors).
func (p *Problem) PinCandidates(edges []int, threads int) (*Problem, error) {
	pinA := make(map[int]int)
	pinB := make(map[int]int)
	for _, e := range edges {
		if e < 0 || e >= p.L.NumEdges() {
			return nil, fmt.Errorf("core: candidate edge %d out of range", e)
		}
		pinA[p.L.EdgeA[e]] = e
		pinB[p.L.EdgeB[e]] = e
	}
	kept := make([]int, 0, p.L.NumEdges())
	for e := 0; e < p.L.NumEdges(); e++ {
		if pe, ok := pinA[p.L.EdgeA[e]]; ok && pe != e {
			continue
		}
		if pe, ok := pinB[p.L.EdgeB[e]]; ok && pe != e {
			continue
		}
		kept = append(kept, e)
	}
	return p.keepCandidates(kept, threads)
}

// TransferEdgeVector maps a vector over from's candidate edges onto
// to's canonical edge order by (a, b) pair; pairs absent from the
// target get zero. It carries BP messages or heuristic scores across a
// steering edit (RemoveCandidates/PinCandidates), enabling warm
// restarts via BPOptions.WarmY/WarmZ.
func TransferEdgeVector(from, to *Problem, vec []float64) ([]float64, error) {
	if len(vec) != from.L.NumEdges() {
		return nil, fmt.Errorf("core: vector length %d != %d source edges", len(vec), from.L.NumEdges())
	}
	out := make([]float64, to.L.NumEdges())
	for e := 0; e < to.L.NumEdges(); e++ {
		if se, ok := from.L.Find(to.L.EdgeA[e], to.L.EdgeB[e]); ok {
			out[e] = vec[se]
		}
	}
	return out, nil
}

// keepCandidates rebuilds the problem on a subset of L's edges.
func (p *Problem) keepCandidates(kept []int, threads int) (*Problem, error) {
	edges := make([]bipartite.WeightedEdge, 0, len(kept))
	for _, e := range kept {
		edges = append(edges, bipartite.WeightedEdge{A: p.L.EdgeA[e], B: p.L.EdgeB[e], W: p.L.W[e]})
	}
	l, err := bipartite.New(p.L.NA, p.L.NB, edges)
	if err != nil {
		return nil, err
	}
	return NewProblem(p.A, p.B, l, p.Alpha, p.Beta, threads)
}

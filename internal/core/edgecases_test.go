package core_test

// Edge-case tests for behaviors not covered by the main suites:
// degenerate shapes, mismatched sides, panics on misuse.

import (
	"testing"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/core"
	"netalignmc/internal/graph"
	"netalignmc/internal/matching"
)

// emptyOverlapProblem: A has no edges, so S is empty and alignment
// reduces to pure weighted matching.
func emptyOverlapProblem(t testing.TB) *core.Problem {
	t.Helper()
	a := graph.FromEdges(3, nil)
	b := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	l, err := bipartite.New(3, 3, []bipartite.WeightedEdge{
		{A: 0, B: 0, W: 2}, {A: 1, B: 1, W: 3}, {A: 2, B: 2, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(a, b, l, 1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEmptyOverlapProblem(t *testing.T) {
	p := emptyOverlapProblem(t)
	if p.NNZS() != 0 {
		t.Fatalf("nnz(S) = %d", p.NNZS())
	}
	// Both methods degenerate gracefully to weighted matching.
	bp := p.BPAlign(core.BPOptions{Iterations: 5})
	if bp.Objective != 6 || bp.Overlap != 0 {
		t.Fatalf("BP on overlap-free problem: obj=%g overlap=%g", bp.Objective, bp.Overlap)
	}
	mr := p.KlauAlign(core.MROptions{Iterations: 5, GapTolerance: 1e-9})
	if mr.Objective != 6 {
		t.Fatalf("MR on overlap-free problem: %g", mr.Objective)
	}
	// The bound gap closes immediately: no overlap term to relax.
	if !mr.Converged {
		t.Fatal("MR should certify optimality with an empty S")
	}
	if err := p.Verify(0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectangularSidesIdentityIndicator(t *testing.T) {
	// NA != NB: IdentityIndicator must only cover the shorter side.
	a := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}})
	b := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	var edges []bipartite.WeightedEdge
	for va := 0; va < 4; va++ {
		for vb := 0; vb < 2; vb++ {
			edges = append(edges, bipartite.WeightedEdge{A: va, B: vb, W: 1})
		}
	}
	l, err := bipartite.New(4, 2, edges)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(a, b, l, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := p.IdentityIndicator()
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if sum != 2 {
		t.Fatalf("identity selected %g pairs, want 2", sum)
	}
}

func TestRoundHeuristicErrorsOnBadLength(t *testing.T) {
	p := emptyOverlapProblem(t)
	// A short heuristic vector is an API-reachable mistake and must
	// come back as a structured error, not a panic.
	if _, _, err := p.RoundHeuristic([]float64{1}, matching.Exact, 1, 1, &core.Tracker{}); err == nil {
		t.Fatal("short heuristic vector accepted")
	}
}

func TestBPZeroIterationsDefaults(t *testing.T) {
	p := emptyOverlapProblem(t)
	// Iterations <= 0 selects the default (100), not zero work.
	r := p.BPAlign(core.BPOptions{Iterations: -1})
	if r.Iterations != 100 {
		t.Fatalf("default iterations = %d", r.Iterations)
	}
}

func TestWarmStartWrongLengthIgnored(t *testing.T) {
	p := emptyOverlapProblem(t)
	// Documented behavior: mismatched warm vectors are ignored.
	r := p.BPAlign(core.BPOptions{Iterations: 3, WarmY: []float64{1, 2}, WarmZ: nil})
	if err := r.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
}

func TestObserverSeesEveryIteration(t *testing.T) {
	p := emptyOverlapProblem(t)
	calls := 0
	p.BPAlign(core.BPOptions{Iterations: 7, Observer: func(iter int, y, z []float64) {
		calls++
		if iter != calls {
			t.Fatalf("observer iter %d at call %d", iter, calls)
		}
		if len(y) != p.L.NumEdges() || len(z) != p.L.NumEdges() {
			t.Fatal("observer vectors wrong length")
		}
	}})
	if calls != 7 {
		t.Fatalf("observer called %d times", calls)
	}
}

func TestVerifySampledDetectsDenseCorruption(t *testing.T) {
	// Random sampling must catch a corruption that affects many
	// entries (here: all values flipped to 2).
	p := func() *core.Problem {
		a := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
		b := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
		l, _ := bipartite.New(2, 2, []bipartite.WeightedEdge{
			{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 1, B: 0, W: 1}, {A: 1, B: 1, W: 1},
		})
		pp, err := core.NewProblem(a, b, l, 1, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return pp
	}()
	for k := range p.S.Val {
		p.S.Val[k] = 2
	}
	if err := p.Verify(100, nil); err == nil {
		t.Fatal("dense corruption not detected by sampling")
	}
}

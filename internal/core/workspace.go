package core

import (
	"netalignmc/internal/bipartite"
	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
)

// Workspace is an arena of reusable solver buffers sized from the
// problem being solved. The solvers allocate their message vectors,
// othermax scratch, guard snapshots, and rounding state from it, so a
// workspace handed to successive solves (BPOptions.Workspace /
// MROptions.Workspace) makes steady-state iterations — and warm
// re-solves — perform zero heap allocations. Buffers grow to the
// largest problem seen and are never shrunk.
//
// A workspace serves one solve at a time; concurrent solves need one
// workspace each. A nil workspace in the options is always valid and
// simply allocates a private one per solve.
type Workspace struct {
	// Belief-propagation state: message vectors over E_L and the
	// overlap messages over nnz(S), plus the numeric guard's
	// last-good snapshots.
	y, z, yPrev, zPrev   []float64
	yu, zu               []float64 // fused-kernel undamped sweeps
	d, om, om2           []float64
	sk, skPrev, f        []float64
	goodY, goodZ, goodSK []float64

	// Matching-relaxation state: multipliers and row-matching values
	// over nnz(S), the combined heuristic over E_L, and the guard
	// snapshot of the multipliers.
	u, rowW, sL, goodU []float64
	wbar               []float64

	// Rounding state: one slot per concurrently rounded heuristic
	// (BP's batch size; one for MR). Slots are heap-stable pointers:
	// each slot holds closures capturing itself (see slotObjective),
	// so growing the slice must not move live slots. roundKey records
	// which matcher spec the slots were built for; roundL which
	// candidate graph.
	slots    []*roundSlot
	roundKey string
	roundL   *bipartite.Graph

	// parts caches the balanced per-worker partition boundaries for
	// the current (problem, worker count); see Workspace.ensureParts.
	parts partitionSet
}

// NewWorkspace returns an empty workspace; buffers are sized on first
// use. The constructor exists so callers can hold one across solves.
func NewWorkspace() *Workspace { return &Workspace{} }

// roundSlot is the reusable state of one rounding evaluation: the
// heuristic copy, a structure-sharing clone of L carrying it as
// weights, the matcher with its scratch, and the result/indicator
// buffers. obj/ok carry the outcome from a parallel batch task back to
// the in-order tracker offers.
type roundSlot struct {
	iter  int
	heur  []float64
	lw    bipartite.Graph
	match matching.MatchInto
	res   matching.Result
	x     []float64
	obj   float64
	ok    bool
	// threads is the nested thread budget a pipelined evaluation
	// uses, fixed at submit time to the exact budget the barrier
	// path's pool dispatch would hand this slot (see nestedBudget).
	threads int

	// Hoisted objective folds: a closure handed to the parallel
	// reductions escapes, so building one per evaluation would
	// heap-allocate every rounding. They are built once per
	// (slot, problem) and read the slot's x field, which is re-bound
	// before each evaluation; they are per-slot (not per-problem)
	// because batched tasks evaluate slots concurrently.
	objP   *Problem
	mwFold func(lo, hi int) float64
	qfFold func(lo, hi int) float64
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func zeroFloat64(vecs ...[]float64) {
	for _, v := range vecs {
		for i := range v {
			v[i] = 0
		}
	}
}

// ensureBP sizes the belief-propagation buffers for |E_L| = mEL and
// nnz(S) = nnz.
func (ws *Workspace) ensureBP(mEL, nnz int) {
	ws.y = growFloat64(ws.y, mEL)
	ws.z = growFloat64(ws.z, mEL)
	ws.yPrev = growFloat64(ws.yPrev, mEL)
	ws.zPrev = growFloat64(ws.zPrev, mEL)
	ws.yu = growFloat64(ws.yu, mEL)
	ws.zu = growFloat64(ws.zu, mEL)
	ws.d = growFloat64(ws.d, mEL)
	ws.om = growFloat64(ws.om, mEL)
	ws.om2 = growFloat64(ws.om2, mEL)
	ws.goodY = growFloat64(ws.goodY, mEL)
	ws.goodZ = growFloat64(ws.goodZ, mEL)
	ws.sk = growFloat64(ws.sk, nnz)
	ws.skPrev = growFloat64(ws.skPrev, nnz)
	ws.f = growFloat64(ws.f, nnz)
	ws.goodSK = growFloat64(ws.goodSK, nnz)
}

// ensureMR sizes the matching-relaxation buffers.
func (ws *Workspace) ensureMR(mEL, nnz int) {
	ws.u = growFloat64(ws.u, nnz)
	ws.rowW = growFloat64(ws.rowW, nnz)
	ws.sL = growFloat64(ws.sL, nnz)
	ws.goodU = growFloat64(ws.goodU, nnz)
	ws.wbar = growFloat64(ws.wbar, mEL)
	ws.d = growFloat64(ws.d, mEL)
}

// ensureRound prepares n rounding slots for problem p. key identifies
// the matcher configuration: slots are rebuilt when it changes, and an
// empty key (a legacy Rounding func, whose identity cannot be
// compared) rebuilds every solve. mk constructs one reusable matcher
// per slot so concurrent batch tasks never share scratch.
func (ws *Workspace) ensureRound(p *Problem, key string, mk func() (matching.MatchInto, error), n int) error {
	if key == "" || ws.roundKey != key || ws.roundL != p.L {
		ws.slots = ws.slots[:0]
		ws.roundKey = key
		ws.roundL = p.L
	}
	for len(ws.slots) < n {
		m, err := mk()
		if err != nil {
			return err
		}
		ws.slots = append(ws.slots, &roundSlot{match: m})
	}
	for _, s := range ws.slots {
		s.lw = *p.L // shares structure; W is repointed at the heuristic
		s.lw.W = nil
	}
	return nil
}

// matcherFactory normalizes the two ways options select a rounding
// matcher — the legacy Rounding func and the declarative MatcherSpec —
// into a per-slot constructor plus the workspace cache key. The legacy
// func wins when both are set (it predates the spec).
func matcherFactory(rounding matching.Matcher, spec matching.MatcherSpec) (key string, mk func() (matching.MatchInto, error)) {
	if rounding != nil {
		return "", func() (matching.MatchInto, error) {
			return func(g *bipartite.Graph, threads int, out *matching.Result) *matching.Result {
				r := rounding(g, threads)
				if out == nil {
					return r
				}
				out.CopyFrom(r)
				return out
			}, nil
		}
	}
	return "spec:" + spec.String(), spec.Reusable
}

// roundSlotRun rounds the slot's heuristic: match L under the
// heuristic weights, re-base the matching on L's true weights, and
// evaluate the alignment objective. The caller offers the outcome to
// its tracker (in batch order, after any parallel barrier).
func (p *Problem) roundSlotRun(s *roundSlot, threads int) {
	s.ok = false
	s.lw.W = s.heur
	s.match(&s.lw, threads, &s.res)
	s.res.Rescore(p.L)
	s.x = s.res.IndicatorInto(p.L, s.x)
	s.obj = p.slotObjective(s, threads)
	s.ok = true
}

// slotObjective is p.Objective(s.x, threads) evaluated through the
// slot's hoisted folds. The partitions and combine order match
// MatchWeight and Overlap exactly, so the result is bit-identical to
// Objective for the same thread count, without the per-call closures.
func (p *Problem) slotObjective(s *roundSlot, threads int) float64 {
	if parallel.Threads(threads) == 1 {
		return p.Objective(s.x, 1)
	}
	if s.objP != p {
		s.objP = p
		s.mwFold = func(lo, hi int) float64 {
			w := p.L.W
			x := s.x
			sum := 0.0
			for e := lo; e < hi; e++ {
				sum += w[e] * x[e]
			}
			return sum
		}
		s.qfFold = func(lo, hi int) float64 {
			return p.S.QuadFormRange(s.x, s.x, lo, hi)
		}
	}
	mw := parallel.SumFloat64(len(s.x), threads, s.mwFold)
	quad := parallel.SumFloat64(p.S.NumRows, threads, s.qfFold)
	return p.Alpha*mw + p.Beta*(quad/2)
}

package core

import (
	"math"

	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
)

// BaselineKind selects one of the non-iterative (or cheaply iterative)
// baselines that MR and BP are measured against.
type BaselineKind int

const (
	// BaselineRoundWeights is the straightforward heuristic of
	// Section III: ignore the overlap term and round the input weights
	// w directly with one bipartite matching.
	BaselineRoundWeights BaselineKind = iota
	// BaselineIsoRank is an IsoRank-style similarity propagation
	// (Singh et al., the source of the paper's dmela-scere instance):
	// power iteration x ← (1−η)·ŵ + η·norm(S·x) over the candidate
	// edges — S restricted to E_L×E_L is exactly the product-graph
	// adjacency IsoRank walks on — followed by one rounding.
	BaselineIsoRank
	// BaselineNSD is a network-similarity-decomposition-style
	// iteration (Kollias, Mohammadi, Grama — cited as [11] in the
	// paper's introduction): like IsoRank but with the propagation
	// degree-normalized per candidate pair, score(i,i') averaging
	// rather than summing the neighboring pair scores. Restricted to
	// the candidate edges E_L, one step is x ← D⁻¹·S·x with
	// D[(i,i')] = deg_A(i)·deg_B(i').
	BaselineNSD
)

// String returns the baseline name.
func (k BaselineKind) String() string {
	switch k {
	case BaselineIsoRank:
		return "isorank"
	case BaselineNSD:
		return "nsd"
	default:
		return "round-weights"
	}
}

// BaselineOptions configures BaselineAlign.
type BaselineOptions struct {
	Kind BaselineKind
	// Iterations is the number of power iterations (IsoRank only;
	// default 20).
	Iterations int
	// Eta is the propagation weight in (0,1) (IsoRank only; default
	// 0.85, the conventional IsoRank alpha).
	Eta float64
	// Threads is the worker count (<= 0 means GOMAXPROCS).
	Threads int
	// Rounding is the matcher used to round (nil = exact).
	Rounding matching.Matcher
}

// BaselineAlign runs a baseline heuristic and returns its alignment.
func (p *Problem) BaselineAlign(o BaselineOptions) *AlignResult {
	if o.Iterations <= 0 {
		o.Iterations = 20
	}
	if o.Eta <= 0 || o.Eta >= 1 {
		o.Eta = 0.85
	}
	rounding := o.Rounding
	if rounding == nil {
		rounding = matching.Exact
	}
	threads := o.Threads
	mEL := p.L.NumEdges()

	heur := make([]float64, mEL)
	copy(heur, p.L.W)

	if (o.Kind == BaselineIsoRank || o.Kind == BaselineNSD) && p.S.NNZ() > 0 {
		x := make([]float64, mEL)
		next := make([]float64, mEL)
		copy(x, p.L.W)
		normalize(x, threads)
		wNorm := make([]float64, mEL)
		copy(wNorm, p.L.W)
		normalize(wNorm, threads)
		// NSD normalizes each propagated score by the candidate
		// pair's degree product (neighbor averaging); IsoRank uses the
		// raw sum with a global renormalization.
		var invDeg []float64
		if o.Kind == BaselineNSD {
			invDeg = make([]float64, mEL)
			for e := 0; e < mEL; e++ {
				d := p.A.Degree(p.L.EdgeA[e]) * p.B.Degree(p.L.EdgeB[e])
				if d > 0 {
					invDeg[e] = 1 / float64(d)
				}
			}
		}
		for it := 0; it < o.Iterations; it++ {
			parallel.ForDynamic(mEL, threads, parallel.DefaultChunk, func(lo, hi int) {
				p.S.MulVecRange(next, x, lo, hi)
				if invDeg != nil {
					for e := lo; e < hi; e++ {
						next[e] *= invDeg[e]
					}
				}
			})
			normalize(next, threads)
			parallel.ForStatic(mEL, threads, func(lo, hi int) {
				for e := lo; e < hi; e++ {
					next[e] = (1-o.Eta)*wNorm[e] + o.Eta*next[e]
				}
			})
			x, next = next, x
		}
		copy(heur, x)
	}

	tr := &Tracker{}
	if _, _, err := p.RoundHeuristic(heur, rounding, threads, 1, tr); err != nil {
		out := p.emptyResult()
		out.Err = err
		return out
	}
	res, obj := tr.BestMatching, tr.BestObjective
	xInd := res.Indicator(p.L)
	return &AlignResult{
		Matching:    res,
		Objective:   obj,
		MatchWeight: p.MatchWeight(xInd, threads),
		Overlap:     p.Overlap(xInd, threads),
		BestIter:    1,
		Iterations:  o.Iterations,
		Evaluations: tr.Evaluations,
	}
}

// normalize scales v to unit 1-norm (no-op on a zero vector).
func normalize(v []float64, threads int) {
	sum := parallel.SumFloat64(len(v), threads, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += math.Abs(v[i])
		}
		return s
	})
	if sum == 0 {
		return
	}
	inv := 1 / sum
	parallel.ForStatic(len(v), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] *= inv
		}
	})
}

package core

import (
	"math"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/parallel"
)

// othermaxRowsRange applies othermaxrow to the rows [lo, hi).
func othermaxRowsRange(dst, g []float64, l *bipartite.Graph, lo, hi int) {
	for a := lo; a < hi; a++ {
		elo, ehi := l.RowRange(a)
		max1, max2 := math.Inf(-1), math.Inf(-1)
		arg := -1
		for e := elo; e < ehi; e++ {
			v := g[e]
			if v > max1 {
				max2 = max1
				max1 = v
				arg = e
			} else if v > max2 {
				max2 = v
			}
		}
		for e := elo; e < ehi; e++ {
			other := max1
			if e == arg {
				other = max2
			}
			if other < 0 {
				other = 0
			}
			dst[e] = other
		}
	}
}

// othermaxColsRange applies othermaxcol to the columns [lo, hi).
func othermaxColsRange(dst, g []float64, l *bipartite.Graph, lo, hi int) {
	for b := lo; b < hi; b++ {
		edges := l.ColEdgesOf(b)
		max1, max2 := math.Inf(-1), math.Inf(-1)
		arg := -1
		for _, e := range edges {
			v := g[e]
			if v > max1 {
				max2 = max1
				max1 = v
				arg = e
			} else if v > max2 {
				max2 = v
			}
		}
		for _, e := range edges {
			other := max1
			if e == arg {
				other = max2
			}
			if other < 0 {
				other = 0
			}
			dst[e] = other
		}
	}
}

// othermaxRowsInto computes the paper's othermaxrow function into dst:
// for each vertex i ∈ V_A and each incident edge (i,i'),
//
//	dst[(i,i')] = bound_{0,∞}( max over (i,k') ∈ E_L, k' ≠ i' of g[(i,k')] )
//
// i.e. every edge in a row receives the row maximum, except the
// maximal edge itself which receives the second largest value, clamped
// below at zero. Rows with a single edge get 0 (the max over an empty
// set is -∞, bounded to 0). The computation is parallelized over the
// rows (V_A vertices) with a dynamic schedule, matching Section IV-C.
// The single-thread path avoids the parallel construct entirely: the
// body closure escapes into it, so even a degenerate p=1 call would
// allocate the closure each time.
func othermaxRowsInto(dst, g []float64, l *bipartite.Graph, threads, chunk int) {
	if parallel.Threads(threads) == 1 {
		othermaxRowsRange(dst, g, l, 0, l.NA)
		return
	}
	parallel.ForDynamic(l.NA, threads, chunk, func(lo, hi int) {
		othermaxRowsRange(dst, g, l, lo, hi)
	})
}

// othermaxColsInto is othermaxcol: the same computation over the
// columns (V_B vertices) of L, using the precomputed column view.
func othermaxColsInto(dst, g []float64, l *bipartite.Graph, threads, chunk int) {
	if parallel.Threads(threads) == 1 {
		othermaxColsRange(dst, g, l, 0, l.NB)
		return
	}
	parallel.ForDynamic(l.NB, threads, chunk, func(lo, hi int) {
		othermaxColsRange(dst, g, l, lo, hi)
	})
}

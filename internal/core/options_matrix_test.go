package core_test

// Table-driven interaction test: every combination of the main BP and
// MR option axes must produce a valid matching, and with deterministic
// (exact) rounding the objective must be identical across the purely
// scheduling axes (threads, batch, schedule, task-parallel othermax).

import (
	"fmt"
	"math"
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
)

func TestBPOptionMatrix(t *testing.T) {
	p := smallSynthetic(t, 71)
	ref := p.BPAlign(core.BPOptions{Iterations: 10})
	for _, batch := range []int{1, 7, 20} {
		for _, threads := range []int{1, 3} {
			for _, sched := range []parallel.Schedule{parallel.Dynamic, parallel.Static, parallel.Guided} {
				for _, taskOM := range []bool{false, true} {
					name := fmt.Sprintf("batch=%d/threads=%d/%v/taskOM=%v", batch, threads, sched, taskOM)
					r := p.BPAlign(core.BPOptions{
						Iterations: 10, Batch: batch, Threads: threads,
						Sched: sched, TaskParallelOthermax: taskOM, Chunk: 16,
					})
					if err := r.Matching.Validate(p.L); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if math.Abs(r.Objective-ref.Objective) > 1e-9 {
						t.Fatalf("%s: objective %g != reference %g (scheduling axes must not change results)",
							name, r.Objective, ref.Objective)
					}
				}
			}
		}
	}
}

func TestBPDampingMatrix(t *testing.T) {
	p := smallSynthetic(t, 73)
	for _, damp := range []core.Damping{core.DampPower, core.DampConstant, core.DampNone} {
		for _, gamma := range []float64{0.5, 0.9, 0.99} {
			for _, rounding := range []matching.Matcher{nil, matching.Approx} {
				r := p.BPAlign(core.BPOptions{
					Iterations: 8, Damp: damp, Gamma: gamma, Rounding: rounding,
				})
				if err := r.Matching.Validate(p.L); err != nil {
					t.Fatalf("damp=%v gamma=%g: %v", damp, gamma, err)
				}
				if r.Objective < 0 {
					t.Fatalf("damp=%v gamma=%g: negative objective", damp, gamma)
				}
			}
		}
	}
}

func TestMROptionMatrix(t *testing.T) {
	p := smallSynthetic(t, 79)
	ref := p.KlauAlign(core.MROptions{Iterations: 8})
	for _, threads := range []int{1, 3} {
		for _, sched := range []parallel.Schedule{parallel.Dynamic, parallel.Static} {
			for _, greedyRows := range []bool{false, true} {
				name := fmt.Sprintf("threads=%d/%v/greedyRows=%v", threads, sched, greedyRows)
				r := p.KlauAlign(core.MROptions{
					Iterations: 8, Threads: threads, Sched: sched,
					GreedyRowMatch: greedyRows, Chunk: 16,
				})
				if err := r.Matching.Validate(p.L); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !greedyRows && math.Abs(r.Objective-ref.Objective) > 1e-9 {
					t.Fatalf("%s: objective %g != reference %g", name, r.Objective, ref.Objective)
				}
			}
		}
	}
}

func TestReportConservedSubgraph(t *testing.T) {
	p := smallSynthetic(t, 83)
	res := p.BPAlign(core.BPOptions{Iterations: 20})
	rep := p.NewReport(res.Matching, nil, 1)
	sub := rep.ConservedSubgraph(p)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != p.A.NumVertices() {
		t.Fatalf("conserved subgraph has %d vertices", sub.NumVertices())
	}
	if sub.NumEdges() != int(rep.Overlap) {
		t.Fatalf("conserved subgraph %d edges != overlap %g", sub.NumEdges(), rep.Overlap)
	}
	// Every conserved edge must exist in A.
	for _, e := range sub.Edges() {
		if !p.A.HasEdge(e.U, e.V) {
			t.Fatalf("conserved edge %+v not in A", e)
		}
	}
}

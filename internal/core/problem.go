// Package core implements the network alignment problem and the two
// iterative heuristics the paper parallelizes: Klau's matching
// relaxation (MR, Listing 1) and belief propagation (BP, Listing 2),
// both with pluggable exact or approximate rounding and with the
// batched rounding of Section IV-C.
package core

import (
	"fmt"
	"math"
	"sync"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/graph"
	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
	"netalignmc/internal/sparse"
	"netalignmc/internal/stats"
)

// Problem is a network alignment instance: undirected graphs A and B,
// the weighted bipartite candidate graph L between their vertex sets,
// objective weights Alpha (matching weight) and Beta (overlap), and
// the derived overlap matrix S.
//
// S is |E_L|-by-|E_L| over L's canonical edge order with
// S[(i,i'),(j,j')] = 1 exactly when (i,j) ∈ E_A and (i',j') ∈ E_B —
// picking both L-edges into the matching overlaps one edge pair, and
// xᵀSx double-counts, hence the β/2 in the objective. S is symmetric
// with an empty diagonal.
type Problem struct {
	A, B  *graph.Graph
	L     *bipartite.Graph
	Alpha float64
	Beta  float64
	S     *sparse.CSR

	// SPerm is the transpose permutation of S's pattern (the paper's
	// permute-the-values transpose trick), shared by the methods.
	SPerm []int
	// SRow[k] is the row of nonzero k, for loops over the nonzero
	// index space.
	SRow []int

	// reorderViews caches the locality-reordered storage layouts of S
	// (see reorder.go), built lazily per mode and shared by
	// concurrent solves.
	reorderMu    sync.Mutex
	reorderViews map[ReorderMode]*reorderView
}

// NewProblem assembles a Problem and builds S. Construction is
// parallelized over the edges of L (threads <= 0 means GOMAXPROCS).
func NewProblem(a, b *graph.Graph, l *bipartite.Graph, alpha, beta float64, threads int) (*Problem, error) {
	if l.NA != a.NumVertices() || l.NB != b.NumVertices() {
		return nil, fmt.Errorf("core: L is %dx%d but |V_A|=%d, |V_B|=%d",
			l.NA, l.NB, a.NumVertices(), b.NumVertices())
	}
	if alpha < 0 || beta < 0 {
		return nil, fmt.Errorf("core: negative objective weights alpha=%g beta=%g", alpha, beta)
	}
	p := &Problem{A: a, B: b, L: l, Alpha: alpha, Beta: beta}
	if err := p.buildS(threads); err != nil {
		return nil, err
	}
	return p, nil
}

// buildS constructs the overlap matrix. For each L-edge e1 = (i,i'),
// the nonzero columns of row e1 are the L-edges (j,j') with
// j ∈ adj_A(i) and j' ∈ adj_B(i'). We enumerate j over adj_A(i) and
// walk L's row of j; membership of j' in adj_B(i') is tested against a
// per-worker epoch-stamped mark array over V_B (O(1) per test instead
// of a binary search, amortizing one neighborhood scan per row). Rows
// are built independently so the loop parallelizes over e1
// (dynamically: the nonzero distribution of S "is highly irregular and
// imbalanced").
func (p *Problem) buildS(threads int) error {
	m := p.L.NumEdges()
	rows := make([][]int32, m)
	// Worker ids from ForDynamicWorker are in [0, PlannedWorkers), not
	// [0, Threads): sizing by the planned count is the scratch-sizing
	// contract (Threads overestimates when m is small relative to the
	// chunk, allocating mark arrays no worker ever touches).
	nWorkers := parallel.PlannedWorkers(m, threads, 256)
	if nWorkers < 1 {
		nWorkers = 1
	}
	type markSet struct {
		stamp []int64
		epoch int64
	}
	marks := make([]*markSet, nWorkers)
	for w := range marks {
		marks[w] = &markSet{stamp: make([]int64, p.B.NumVertices())}
	}
	parallel.ForDynamicWorker(m, threads, 256, func(worker, lo, hi int) {
		mk := marks[worker]
		for e1 := lo; e1 < hi; e1++ {
			i := p.L.EdgeA[e1]
			iP := p.L.EdgeB[e1]
			mk.epoch++
			for _, jP := range p.B.Neighbors(iP) {
				mk.stamp[jP] = mk.epoch
			}
			var cols []int32
			for _, j := range p.A.Neighbors(i) {
				rlo, rhi := p.L.RowRange(j)
				for e2 := rlo; e2 < rhi; e2++ {
					// jP == iP cannot be marked: B has no self loops.
					if mk.stamp[p.L.EdgeB[e2]] == mk.epoch {
						cols = append(cols, int32(e2))
					}
				}
			}
			rows[e1] = cols
		}
	})
	ptr := make([]int, m+1)
	for e1, cols := range rows {
		ptr[e1+1] = ptr[e1] + len(cols)
	}
	nnz := ptr[m]
	col := make([]int, nnz)
	val := make([]float64, nnz)
	parallel.ForDynamic(m, threads, 256, func(lo, hi int) {
		for e1 := lo; e1 < hi; e1++ {
			base := ptr[e1]
			for i, c := range rows[e1] {
				col[base+i] = int(c)
				val[base+i] = 1
			}
		}
	})
	p.S = &sparse.CSR{NumRows: m, NumCols: m, Ptr: ptr, Col: col, Val: val}
	if err := p.S.Validate(); err != nil {
		return fmt.Errorf("core: built S is invalid: %w", err)
	}
	perm, err := p.S.TransposePerm()
	if err != nil {
		return fmt.Errorf("core: S is not structurally symmetric: %w", err)
	}
	p.SPerm = perm
	p.SRow = p.S.RowIndex()
	return nil
}

// NNZS returns the number of stored entries of S (the paper's Table II
// column "S" counts nonzeros this way; each overlapped edge pair
// contributes two symmetric entries).
func (p *Problem) NNZS() int { return p.S.NNZ() }

// MatchWeight returns wᵀx for an indicator (or heuristic) vector x
// over E_L. The single-thread path skips the parallel reduction: the
// fold closure escapes into it, so even a p=1 call would allocate.
func (p *Problem) MatchWeight(x []float64, threads int) float64 {
	w := p.L.W
	if parallel.Threads(threads) == 1 {
		s := 0.0
		for e := range x {
			s += w[e] * x[e]
		}
		return s
	}
	return parallel.SumFloat64(len(x), threads, func(lo, hi int) float64 {
		s := 0.0
		for e := lo; e < hi; e++ {
			s += w[e] * x[e]
		}
		return s
	})
}

// Overlap returns xᵀSx/2, the number of overlapped edge pairs when x
// is a 0/1 matching indicator.
func (p *Problem) Overlap(x []float64, threads int) float64 {
	if parallel.Threads(threads) == 1 {
		return p.S.QuadFormRange(x, x, 0, p.S.NumRows) / 2
	}
	quad := parallel.SumFloat64(p.S.NumRows, threads, func(lo, hi int) float64 {
		return p.S.QuadFormRange(x, x, lo, hi)
	})
	return quad / 2
}

// Objective evaluates α·wᵀx + (β/2)·xᵀSx.
func (p *Problem) Objective(x []float64, threads int) float64 {
	return p.Alpha*p.MatchWeight(x, threads) + p.Beta*p.Overlap(x, threads)
}

// ObjectiveOfMatching evaluates the alignment objective of a matching.
func (p *Problem) ObjectiveOfMatching(r *matching.Result, threads int) float64 {
	return p.Objective(r.Indicator(p.L), threads)
}

// IdentityIndicator returns the indicator of the "identity" alignment
// mapping vertex v of A to vertex v of B wherever that edge exists in
// L. The synthetic generator plants this alignment; quality is
// reported as a fraction of its objective (Figure 2).
func (p *Problem) IdentityIndicator() []float64 {
	x := make([]float64, p.L.NumEdges())
	n := p.A.NumVertices()
	if bn := p.B.NumVertices(); bn < n {
		n = bn
	}
	for v := 0; v < n; v++ {
		if e, ok := p.L.Find(v, v); ok {
			x[e] = 1
		}
	}
	return x
}

// CorrectMatchFraction returns the fraction of A-vertices that a
// matching maps to their identity counterpart, the paper's "fraction
// of correct matches" metric for synthetic problems.
func CorrectMatchFraction(r *matching.Result) float64 {
	if len(r.MateA) == 0 {
		return 0
	}
	correct := 0
	for a, b := range r.MateA {
		if a == b && b >= 0 {
			correct++
		}
	}
	return float64(correct) / float64(len(r.MateA))
}

// Stats summarizes a problem the way the paper's Table II does, plus
// the structural observations of Section VI ("the degree distribution
// in L is fairly regular, whereas the non-zero distribution in S is
// highly irregular and imbalanced").
type Stats struct {
	Name string
	VA   int
	VB   int
	EL   int
	NnzS int
	// MaxLDegree and MeanLDegree describe L's (regular) degree shape
	// over V_A.
	MaxLDegree  int
	MeanLDegree float64
	// MaxSRow and MeanSRow describe S's (imbalanced) row-size shape;
	// Imbalance is MaxSRow/MeanSRow, the quantity that motivates the
	// paper's dynamic scheduling.
	MaxSRow   int
	MeanSRow  float64
	Imbalance float64
	// SRowGini is the Gini coefficient of S's row nonzero counts
	// (0 = perfectly uniform, → 1 = all nonzeros in one row): the
	// skew summary that motivates the nnz-balanced partitioning.
	SRowGini float64
}

// ProblemStats collects Table II statistics for a named problem.
func ProblemStats(name string, p *Problem) Stats {
	st := Stats{
		Name: name,
		VA:   p.A.NumVertices(),
		VB:   p.B.NumVertices(),
		EL:   p.L.NumEdges(),
		NnzS: p.NNZS(),
	}
	for a := 0; a < p.L.NA; a++ {
		if d := p.L.DegreeA(a); d > st.MaxLDegree {
			st.MaxLDegree = d
		}
	}
	if st.VA > 0 {
		st.MeanLDegree = float64(st.EL) / float64(st.VA)
	}
	for r := 0; r < p.S.NumRows; r++ {
		lo, hi := p.S.RowRange(r)
		if hi-lo > st.MaxSRow {
			st.MaxSRow = hi - lo
		}
	}
	if p.S.NumRows > 0 {
		st.MeanSRow = float64(st.NnzS) / float64(p.S.NumRows)
	}
	if st.MeanSRow > 0 {
		st.Imbalance = float64(st.MaxSRow) / st.MeanSRow
	}
	st.SRowGini = stats.SkewOfPtr(p.S.Ptr).Gini
	return st
}

// almostEqual compares floats with a relative-absolute tolerance; used
// by internal consistency checks.
func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

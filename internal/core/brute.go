package core

import (
	"math"

	"netalignmc/internal/matching"
)

// BruteForceAlign computes the exact optimum of the network alignment
// objective by branch and bound over the candidate edges of L. It is
// exponential and exists as a test oracle for small instances (the
// NP-hardness of the problem is the reason the paper's heuristics
// exist at all). maxEdges guards against accidental explosion; 0
// means 64.
//
// It returns the optimal objective and one optimal matching.
func (p *Problem) BruteForceAlign(maxEdges int) (float64, *matching.Result) {
	m := p.L.NumEdges()
	if maxEdges <= 0 {
		maxEdges = 64
	}
	if m > maxEdges {
		panic("core: BruteForceAlign called on a problem above the edge limit")
	}
	usedA := make([]bool, p.L.NA)
	usedB := make([]bool, p.L.NB)
	x := make([]float64, m)
	bestX := make([]float64, m)
	bestObj := math.Inf(-1)

	// Suffix bound: the objective gain from edges ≥ e is at most the
	// sum of α·w plus β·(their S-row sums) — loose but effective.
	suffix := make([]float64, m+1)
	for e := m - 1; e >= 0; e-- {
		lo, hi := p.S.RowRange(e)
		gain := p.Alpha * p.L.W[e]
		if gain < 0 {
			gain = 0
		}
		suffix[e] = suffix[e+1] + gain + p.Beta*float64(hi-lo)
	}

	var rec func(e int)
	rec = func(e int) {
		obj := p.Objective(x, 1)
		if obj > bestObj {
			bestObj = obj
			copy(bestX, x)
		}
		if e >= m {
			return
		}
		if p.Objective(x, 1)+suffix[e] <= bestObj {
			return
		}
		a, b := p.L.EdgeA[e], p.L.EdgeB[e]
		if !usedA[a] && !usedB[b] {
			usedA[a], usedB[b] = true, true
			x[e] = 1
			rec(e + 1)
			x[e] = 0
			usedA[a], usedB[b] = false, false
		}
		rec(e + 1)
	}
	rec(0)

	mateA := make([]int, p.L.NA)
	mateB := make([]int, p.L.NB)
	for i := range mateA {
		mateA[i] = -1
	}
	for i := range mateB {
		mateB[i] = -1
	}
	for e := 0; e < m; e++ {
		if bestX[e] == 1 {
			mateA[p.L.EdgeA[e]] = p.L.EdgeB[e]
			mateB[p.L.EdgeB[e]] = p.L.EdgeA[e]
		}
	}
	return bestObj, matching.NewResult(p.L, mateA, mateB)
}

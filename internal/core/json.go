package core

import (
	"errors"
	"fmt"

	"netalignmc/internal/matching"
	"netalignmc/internal/stats"
)

// MarshalText encodes the stop reason as its String form, so JSON
// documents carry "cancelled"/"deadline"/... instead of opaque ints.
// The CLI's -json output and the server's job API share this encoding.
func (r StopReason) MarshalText() ([]byte, error) {
	return []byte(r.String()), nil
}

// UnmarshalText parses the textual stop-reason names produced by
// MarshalText/String.
func (r *StopReason) UnmarshalText(text []byte) error {
	switch string(text) {
	case "max-iterations":
		*r = StopMaxIter
	case "converged":
		*r = StopConverged
	case "cancelled":
		*r = StopCancelled
	case "deadline":
		*r = StopDeadline
	case "numerics":
		*r = StopNumerics
	default:
		return fmt.Errorf("core: unknown stop reason %q", text)
	}
	return nil
}

// ResultJSON is the machine-readable encoding of an AlignResult,
// shared by `netalign -json` and the netalignd job API so scripts see
// one schema regardless of how the solve ran. MateA is the alignment
// itself: MateA[a] is the B-vertex matched to A-vertex a, -1 when a is
// unmatched.
type ResultJSON struct {
	Objective       float64    `json:"objective"`
	MatchWeight     float64    `json:"matchWeight"`
	Overlap         float64    `json:"overlap"`
	Matched         int        `json:"matched"`
	BestIter        int        `json:"bestIter"`
	Iterations      int        `json:"iterations"`
	Evaluations     int        `json:"evaluations"`
	Stopped         StopReason `json:"stopped"`
	Converged       bool       `json:"converged,omitempty"`
	NumericFailures int        `json:"numericFailures,omitempty"`
	Error           string     `json:"error,omitempty"`
	MateA           []int      `json:"mateA"`
	// Problem, when present, summarizes the instance the result was
	// computed on, including the S row-nonzero skew that motivates the
	// nnz-balanced partitioning (filled by `netalign -json`).
	Problem *ProblemJSON `json:"problem,omitempty"`
}

// ProblemJSON is the machine-readable problem summary attached to
// ResultJSON documents.
type ProblemJSON struct {
	VA       int        `json:"va"`
	VB       int        `json:"vb"`
	EL       int        `json:"el"`
	NnzS     int        `json:"nnzS"`
	SRowSkew stats.Skew `json:"sRowSkew"`
}

// ProblemSummaryJSON builds the serializable problem summary.
func (p *Problem) ProblemSummaryJSON() *ProblemJSON {
	return &ProblemJSON{
		VA:       p.A.NumVertices(),
		VB:       p.B.NumVertices(),
		EL:       p.L.NumEdges(),
		NnzS:     p.NNZS(),
		SRowSkew: stats.SkewOfPtr(p.S.Ptr),
	}
}

// Restore rebuilds an AlignResult from its JSON encoding against the
// problem it was computed on: the matching's MateB side and per-edge
// weight are re-derived from MateA over p.L. The CLI's result cache
// uses it to replay a stored result exactly as if the solve had just
// run. It fails when the document's mate array does not fit p.L —
// the guard against replaying a result onto the wrong problem.
func (d *ResultJSON) Restore(p *Problem) (*AlignResult, error) {
	r := &AlignResult{
		Objective:       d.Objective,
		MatchWeight:     d.MatchWeight,
		Overlap:         d.Overlap,
		BestIter:        d.BestIter,
		Iterations:      d.Iterations,
		Evaluations:     d.Evaluations,
		Stopped:         d.Stopped,
		Converged:       d.Converged,
		NumericFailures: d.NumericFailures,
	}
	if d.Error != "" {
		r.Err = errors.New(d.Error)
	}
	if d.MateA == nil {
		return r, nil
	}
	if len(d.MateA) != p.L.NA {
		return nil, fmt.Errorf("core: restore: mate array has %d entries, problem has %d A-vertices", len(d.MateA), p.L.NA)
	}
	m := &matching.Result{
		MateA: append([]int(nil), d.MateA...),
		MateB: make([]int, p.L.NB),
	}
	for i := range m.MateB {
		m.MateB[i] = -1
	}
	for a, b := range m.MateA {
		if b < 0 {
			continue
		}
		if b >= p.L.NB {
			return nil, fmt.Errorf("core: restore: mate %d -> %d out of range (NB=%d)", a, b, p.L.NB)
		}
		m.MateB[b] = a
		m.Card++
		if e, ok := p.L.Find(a, b); ok {
			m.Weight += p.L.W[e]
		}
	}
	r.Matching = m
	return r, nil
}

// JSON builds the serializable view of the result. The mate array is
// copied so the view can outlive mutations of the source result.
func (r *AlignResult) JSON() *ResultJSON {
	out := &ResultJSON{
		Objective:       r.Objective,
		MatchWeight:     r.MatchWeight,
		Overlap:         r.Overlap,
		BestIter:        r.BestIter,
		Iterations:      r.Iterations,
		Evaluations:     r.Evaluations,
		Stopped:         r.Stopped,
		Converged:       r.Converged,
		NumericFailures: r.NumericFailures,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	if r.Matching != nil {
		out.Matched = r.Matching.Card
		out.MateA = append([]int(nil), r.Matching.MateA...)
	}
	return out
}

package core

import (
	"fmt"

	"netalignmc/internal/stats"
)

// MarshalText encodes the stop reason as its String form, so JSON
// documents carry "cancelled"/"deadline"/... instead of opaque ints.
// The CLI's -json output and the server's job API share this encoding.
func (r StopReason) MarshalText() ([]byte, error) {
	return []byte(r.String()), nil
}

// UnmarshalText parses the textual stop-reason names produced by
// MarshalText/String.
func (r *StopReason) UnmarshalText(text []byte) error {
	switch string(text) {
	case "max-iterations":
		*r = StopMaxIter
	case "converged":
		*r = StopConverged
	case "cancelled":
		*r = StopCancelled
	case "deadline":
		*r = StopDeadline
	case "numerics":
		*r = StopNumerics
	default:
		return fmt.Errorf("core: unknown stop reason %q", text)
	}
	return nil
}

// ResultJSON is the machine-readable encoding of an AlignResult,
// shared by `netalign -json` and the netalignd job API so scripts see
// one schema regardless of how the solve ran. MateA is the alignment
// itself: MateA[a] is the B-vertex matched to A-vertex a, -1 when a is
// unmatched.
type ResultJSON struct {
	Objective       float64    `json:"objective"`
	MatchWeight     float64    `json:"matchWeight"`
	Overlap         float64    `json:"overlap"`
	Matched         int        `json:"matched"`
	BestIter        int        `json:"bestIter"`
	Iterations      int        `json:"iterations"`
	Evaluations     int        `json:"evaluations"`
	Stopped         StopReason `json:"stopped"`
	Converged       bool       `json:"converged,omitempty"`
	NumericFailures int        `json:"numericFailures,omitempty"`
	Error           string     `json:"error,omitempty"`
	MateA           []int      `json:"mateA"`
	// Problem, when present, summarizes the instance the result was
	// computed on, including the S row-nonzero skew that motivates the
	// nnz-balanced partitioning (filled by `netalign -json`).
	Problem *ProblemJSON `json:"problem,omitempty"`
}

// ProblemJSON is the machine-readable problem summary attached to
// ResultJSON documents.
type ProblemJSON struct {
	VA       int        `json:"va"`
	VB       int        `json:"vb"`
	EL       int        `json:"el"`
	NnzS     int        `json:"nnzS"`
	SRowSkew stats.Skew `json:"sRowSkew"`
}

// ProblemSummaryJSON builds the serializable problem summary.
func (p *Problem) ProblemSummaryJSON() *ProblemJSON {
	return &ProblemJSON{
		VA:       p.A.NumVertices(),
		VB:       p.B.NumVertices(),
		EL:       p.L.NumEdges(),
		NnzS:     p.NNZS(),
		SRowSkew: stats.SkewOfPtr(p.S.Ptr),
	}
}

// JSON builds the serializable view of the result. The mate array is
// copied so the view can outlive mutations of the source result.
func (r *AlignResult) JSON() *ResultJSON {
	out := &ResultJSON{
		Objective:       r.Objective,
		MatchWeight:     r.MatchWeight,
		Overlap:         r.Overlap,
		BestIter:        r.BestIter,
		Iterations:      r.Iterations,
		Evaluations:     r.Evaluations,
		Stopped:         r.Stopped,
		Converged:       r.Converged,
		NumericFailures: r.NumericFailures,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	if r.Matching != nil {
		out.Matched = r.Matching.Card
		out.MateA = append([]int(nil), r.Matching.MateA...)
	}
	return out
}

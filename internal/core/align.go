package core

import (
	"context"
	"fmt"
)

// Method selects the alignment algorithm for Problem.Align.
type Method int

const (
	// MethodBP is the belief-propagation method (Listing 2), the zero
	// value so an unset Options.Method keeps the library's default.
	MethodBP Method = iota
	// MethodMR is Klau's matching relaxation (Listing 1).
	MethodMR
)

// String returns the method's canonical name ("bp" or "mr").
func (m Method) String() string {
	switch m {
	case MethodMR:
		return "mr"
	default:
		return "bp"
	}
}

// MarshalText implements encoding.TextMarshaler.
func (m Method) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler; it accepts "bp",
// "mr", and the historical alias "klau".
func (m *Method) UnmarshalText(text []byte) error {
	switch string(text) {
	case "bp", "BP":
		*m = MethodBP
	case "mr", "MR", "klau":
		*m = MethodMR
	default:
		return fmt.Errorf("core: unknown method %q (want bp or mr)", text)
	}
	return nil
}

// Options configures Problem.Align: the method plus its option set.
// Only the selected method's options are read, so a caller switching
// methods at runtime can populate both sides once.
type Options struct {
	// Method selects the algorithm (default MethodBP).
	Method Method
	// BP configures MethodBP.
	BP BPOptions
	// MR configures MethodMR.
	MR MROptions
	// Pipeline configures pipelined batched rounding (overlapping the
	// matching step with the next sweep); the zero value keeps the
	// classic barrier path. Results are bit-identical either way.
	Pipeline PipelineOptions
	// Reorder configures the locality reordering of S's row storage;
	// the zero value keeps the canonical order. Results are
	// bit-identical either way.
	Reorder ReorderOptions
}

// Align runs the selected alignment method under a context. It is the
// single entry point the method-specific wrappers (BPAlign, KlauAlign,
// BPAlignCtx, MRAlignCtx) delegate to; new code should call it
// directly. A nil context means context.Background().
//
// Cancellation, checkpoint/resume, the numeric guard, and the error
// contract are those of the selected method — see the option types.
func (p *Problem) Align(ctx context.Context, o Options) (*AlignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch o.Method {
	case MethodBP:
		return p.bpAlign(ctx, o.BP, o.Pipeline, o.Reorder)
	case MethodMR:
		return p.mrAlign(ctx, o.MR, o.Pipeline, o.Reorder)
	default:
		err := fmt.Errorf("core: unknown method %d", o.Method)
		res := p.emptyResult()
		res.Err = err
		return res, err
	}
}

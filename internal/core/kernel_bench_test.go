package core_test

// Kernel-level benchmarks for the individual iteration steps; these
// are the units the paper's Figures 6-7 break runtime into, so having
// them benchmarkable in isolation supports performance work on any
// one step.

import (
	"testing"

	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/matching"
	"netalignmc/internal/stats"
)

func benchProblem(b *testing.B) *core.Problem {
	b.Helper()
	p, err := gen.LcshWiki(0.005, 7, 0)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkSConstruction(b *testing.B) {
	o := gen.DefaultSynthetic(8, 3)
	o.N = 300
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Synthetic(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectiveEvaluation(b *testing.B) {
	p := benchProblem(b)
	x := p.IdentityIndicator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Objective(x, 0)
	}
}

func BenchmarkRoundHeuristicApprox(b *testing.B) {
	p := benchProblem(b)
	tr := &core.Tracker{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RoundHeuristic(p.L.W, matching.Approx, 0, i, tr)
	}
}

func BenchmarkRoundHeuristicExact(b *testing.B) {
	p := benchProblem(b)
	tr := &core.Tracker{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RoundHeuristic(p.L.W, matching.Exact, 0, i, tr)
	}
}

// BenchmarkBPStepBreakdown runs one BP iteration and reports the time
// share of each step as metrics.
func BenchmarkBPStepBreakdown(b *testing.B) {
	p := benchProblem(b)
	b.ResetTimer()
	var timer *stats.StepTimer
	for i := 0; i < b.N; i++ {
		timer = stats.NewStepTimer()
		p.BPAlign(core.BPOptions{
			Iterations: 1, Batch: 2, Rounding: matching.Approx,
			SkipFinalExact: true, Timer: timer,
		})
	}
	for step, frac := range timer.Fractions() {
		b.ReportMetric(frac, step+"_frac")
	}
}

// BenchmarkMRStepBreakdown does the same for Klau's method.
func BenchmarkMRStepBreakdown(b *testing.B) {
	p := benchProblem(b)
	b.ResetTimer()
	var timer *stats.StepTimer
	for i := 0; i < b.N; i++ {
		timer = stats.NewStepTimer()
		p.KlauAlign(core.MROptions{
			Iterations: 1, Rounding: matching.Approx,
			SkipFinalExact: true, Timer: timer,
		})
	}
	for step, frac := range timer.Fractions() {
		b.ReportMetric(frac, step+"_frac")
	}
}

package core

import (
	"encoding/json"
	"testing"
)

func TestStopReasonTextRoundTrip(t *testing.T) {
	for _, r := range []StopReason{StopMaxIter, StopConverged, StopCancelled, StopDeadline, StopNumerics} {
		text, err := r.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back StopReason
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal %q: %v", text, err)
		}
		if back != r {
			t.Fatalf("round trip %v -> %q -> %v", r, text, back)
		}
	}
	var bad StopReason
	if err := bad.UnmarshalText([]byte("exploded")); err == nil {
		t.Fatal("unknown stop reason accepted")
	}
}

func TestAlignResultJSON(t *testing.T) {
	p := tinyProblem(t, 1, 2)
	res := p.BPAlign(BPOptions{Iterations: 5, Threads: 1})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	view := res.JSON()
	if view.Objective != res.Objective || view.Matched != res.Matching.Card {
		t.Fatalf("view %+v does not reflect result", view)
	}
	if len(view.MateA) != p.L.NA {
		t.Fatalf("mateA length %d, want %d", len(view.MateA), p.L.NA)
	}
	// The view must not alias the result's mate array.
	view.MateA[0] = -7
	if res.Matching.MateA[0] == -7 {
		t.Fatal("JSON view aliases the matching")
	}

	data, err := json.Marshal(res.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var back ResultJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Objective != res.Objective {
		t.Fatalf("objective %v did not round-trip bit-identically (%v)", res.Objective, back.Objective)
	}
	if back.Stopped != res.Stopped {
		t.Fatalf("stopped %v -> %v", res.Stopped, back.Stopped)
	}
}

package netalignmc_test

// End-to-end integration test: generate a problem, write and re-read
// it in both file formats, align with both methods and both matchers,
// write and re-read the matching, and verify the report — the whole
// user-visible pipeline in one pass.

import (
	"bytes"
	"math"
	"testing"

	netalignmc "netalignmc"
)

func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate.
	o := netalignmc.DefaultSynthetic(4, 123)
	o.N = 60
	p, err := netalignmc.NewSyntheticProblem(o)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Round-trip through the netalign format.
	var buf bytes.Buffer
	if err := netalignmc.WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := netalignmc.ReadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Round-trip through SMAT.
	var a, b, l bytes.Buffer
	if err := netalignmc.WriteGraphSMAT(&a, p2.A); err != nil {
		t.Fatal(err)
	}
	if err := netalignmc.WriteGraphSMAT(&b, p2.B); err != nil {
		t.Fatal(err)
	}
	if err := netalignmc.WriteCandidateSMAT(&l, p2.L); err != nil {
		t.Fatal(err)
	}
	p3, err := netalignmc.ReadSMATProblem(&a, &b, &l, p2.Alpha, p2.Beta)
	if err != nil {
		t.Fatal(err)
	}
	if p3.NNZS() != p.NNZS() {
		t.Fatalf("format round trips changed nnz(S): %d vs %d", p3.NNZS(), p.NNZS())
	}

	// 4. Align four ways; all must produce valid matchings and agree
	// on the rough solution quality for this easy planted instance.
	results := map[string]*netalignmc.AlignResult{
		"bp-exact":  p3.BPAlign(netalignmc.BPOptions{Iterations: 30}),
		"bp-approx": p3.BPAlign(netalignmc.BPOptions{Iterations: 30, Rounding: netalignmc.ApproxMatcher, Batch: 10}),
		"mr-exact":  p3.KlauAlign(netalignmc.MROptions{Iterations: 30}),
		"mr-approx": p3.KlauAlign(netalignmc.MROptions{Iterations: 30, Rounding: netalignmc.ApproxMatcher}),
	}
	idObj := p3.Objective(p3.IdentityIndicator(), 0)
	for name, r := range results {
		if err := r.Matching.Validate(p3.L); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Objective < 0.75*idObj {
			t.Fatalf("%s: objective %g below 75%% of identity %g", name, r.Objective, idObj)
		}
	}

	// 5. Matching round-trip and report.
	best := results["bp-approx"]
	var mbuf bytes.Buffer
	if err := netalignmc.WriteMatching(&mbuf, best.Matching); err != nil {
		t.Fatal(err)
	}
	loaded, err := netalignmc.ReadMatching(&mbuf, p3.L)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Card != best.Matching.Card || math.Abs(loaded.Weight-best.Matching.Weight) > 1e-9 {
		t.Fatal("matching round trip mismatch")
	}
	rep := p3.NewReport(loaded, nil, 0)
	if math.Abs(rep.Objective-best.Objective) > 1e-9 {
		t.Fatalf("report objective %g != %g", rep.Objective, best.Objective)
	}

	// 6. Steering: remove a candidate, verify, re-solve.
	if e, ok := p3.L.Find(0, 0); ok {
		p4, err := p3.RemoveCandidates([]int{e}, 0)
		if err != nil {
			t.Fatal(err)
		}
		again := p4.BPAlign(netalignmc.BPOptions{Iterations: 10})
		if err := again.Matching.Validate(p4.L); err != nil {
			t.Fatal(err)
		}
	}

	// 7. Traffic model sanity on the final problem.
	tm := netalignmc.NewTrafficModel(p3, 20)
	if tm.DampingShare() <= 0 {
		t.Fatal("traffic model degenerate")
	}
}

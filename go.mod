module netalignmc

go 1.22

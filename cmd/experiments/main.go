// Command experiments regenerates the paper's tables and figures on
// the synthetic stand-ins at a configurable scale.
//
// Usage:
//
//	experiments -exp all -scale 0.02 -iters 20
//	experiments -exp fig4 -scale 0.05 -iters 50 -threads 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netalignmc/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table2, fig2, fig3, fig4, fig5, fig6, fig7, matchers, headline, all")
		scale   = flag.Float64("scale", 0.02, "stand-in size scale in (0,1]; 1 = published sizes")
		iters   = flag.Int("iters", 20, "iterations per alignment run (paper: 400-1000)")
		seed    = flag.Int64("seed", 42, "random seed")
		threads = flag.String("threads", "", "comma-separated thread counts for scaling (default: powers of 2 up to GOMAXPROCS)")
		repeats = flag.Int("repeats", 1, "seeds to average quality experiments over")
		csvDir  = flag.String("csv", "", "also write <exp>.csv files into this directory")
		report  = flag.String("report", "", "write a full markdown report to this file (runs every experiment)")
		base    = flag.Bool("baselines", false, "include the round-weights and isorank baseline curves in quality experiments")
	)
	flag.Parse()

	c := experiments.Config{Scale: *scale, Seed: *seed, Iterations: *iters, Repeats: *repeats, IncludeBaselines: *base}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			t, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || t < 1 {
				fmt.Fprintf(os.Stderr, "experiments: bad thread count %q\n", part)
				os.Exit(2)
			}
			c.Threads = append(c.Threads, t)
		}
	}

	run := func(name string) {
		var report, csv string
		var err error
		switch name {
		case "table2":
			var r *experiments.Table2Result
			r, err = experiments.Table2(c)
			if err == nil {
				report, csv = r.Report, r.CSV()
			}
		case "fig2":
			var r *experiments.Fig2Result
			r, err = experiments.Fig2(c, nil)
			if err == nil {
				report, csv = r.Report, r.CSV()
			}
		case "fig3":
			var top, bottom *experiments.Fig3Result
			top, err = experiments.Fig3(c, "dmela-scere")
			if err == nil {
				bottom, err = experiments.Fig3(c, "lcsh-wiki")
			}
			if err == nil {
				report = top.Report + "\n" + bottom.Report
				csv = top.CSV() + bottom.CSV()
			}
		case "fig4":
			var r *experiments.ScalingResult
			r, err = experiments.Scaling(c, "lcsh-wiki", nil, nil)
			if err == nil {
				report, csv = r.Report, r.CSV()
			}
		case "fig5":
			var r *experiments.ScalingResult
			r, err = experiments.Scaling(c, "lcsh-rameau", []string{"MR", "BP-batch20"}, nil)
			if err == nil {
				report, csv = r.Report, r.CSV()
			}
		case "fig6":
			var r *experiments.StepScalingResult
			r, err = experiments.StepScaling(c, "lcsh-wiki", "MR")
			if err == nil {
				report, csv = r.Report, r.CSV()
			}
		case "fig7":
			var r *experiments.StepScalingResult
			r, err = experiments.StepScaling(c, "lcsh-wiki", "BP-batch20")
			if err == nil {
				report, csv = r.Report, r.CSV()
			}
		case "matchers":
			var r *experiments.MatcherComparisonResult
			r, err = experiments.MatcherComparison(c, "lcsh-wiki")
			if err == nil {
				report, csv = r.Report, r.CSV()
			}
		case "headline":
			var r *experiments.HeadlineResult
			r, err = experiments.Headline(c, "lcsh-wiki")
			if err == nil {
				report = r.Report
			}
		case "convergence":
			var r *experiments.ConvergenceResult
			r, err = experiments.Convergence(c, "lcsh-wiki")
			if err == nil {
				report = r.Report
			}
		case "lp":
			var r *experiments.LPComparisonResult
			r, err = experiments.LPComparison(c, nil)
			if err == nil {
				report = r.Report
			}
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s ====\n%s\n", name, report)
		if *csvDir != "" && csv != "" {
			path := fmt.Sprintf("%s/%s.csv", *csvDir, name)
			if werr := os.WriteFile(path, []byte(csv), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, werr)
				os.Exit(1)
			}
		}
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		err = experiments.FullReport(c, f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *report)
		return
	}

	if *exp == "all" {
		for _, name := range []string{"table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "matchers", "headline", "convergence", "lp"} {
			run(name)
		}
		return
	}
	run(*exp)
}

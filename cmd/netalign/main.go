// Command netalign runs a network alignment method on a problem file
// produced by gensynth (or by netalignmc.WriteProblem) and prints the
// solution summary; it is the CLI face of the library. The heavy
// lifting lives in internal/cli so it is unit-tested.
//
// Usage:
//
//	netalign -in problem.txt -method bp -iters 400 -batch 20 -approx
//	netalign -a A.smat -b B.smat -l L.smat -method mr -timing
//	netalign -in problem.txt -json -progress > result.json
//
// Exit codes:
//
//	0  success (including a run stopped early by convergence)
//	1  I/O failure (unreadable input, unwritable output)
//	2  usage or run error (bad flags, solver error)
//	3  numeric guard stopped the run (best matching still reported)
//	4  -timeout deadline expired (best matching still reported)
//	5  interrupted (SIGINT/SIGTERM; best matching still reported)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netalignmc/internal/cli"
	"netalignmc/internal/core"
	"netalignmc/internal/problemio"
)

// Exit codes; keep in sync with the doc comment, -h usage and README.
const (
	exitOK        = 0
	exitIO        = 1
	exitUsage     = 2
	exitNumerics  = 3
	exitDeadline  = 4
	exitCancelled = 5
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in      = flag.String("in", "", "problem file (netalign format); or use -a/-b/-l")
		aFile   = flag.String("a", "", "graph A in SMAT format (with -b and -l)")
		bFile   = flag.String("b", "", "graph B in SMAT format")
		lFile   = flag.String("l", "", "candidate graph L in SMAT format")
		alpha   = flag.Float64("alpha", 1, "objective weight on matching weight (SMAT input only)")
		beta    = flag.Float64("beta", 2, "objective weight on overlap (SMAT input only)")
		method  = flag.String("method", "bp", "alignment method: bp or mr")
		iters   = flag.Int("iters", 100, "iterations")
		batch   = flag.Int("batch", 1, "bp: rounding batch size r")
		gamma   = flag.Float64("gamma", 0, "bp: damping base (default 0.99); mr: initial step size (default 0.5)")
		mstep   = flag.Int("mstep", 10, "mr: stall window before halving the step size")
		approx  = flag.Bool("approx", false, "round with the parallel half-approximate matcher instead of exact matching")
		matcher = flag.String("matcher", "", "rounding matcher spec (exact, approx, suitor, greedy, locally-dominant(sorted=true), ...); overrides -approx")
		fused   = flag.Bool("fused", false, "bp: fuse the othermax and damping sweeps (bit-identical, fewer passes over S)")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")

		pipeline    = flag.Bool("pipeline", false, "overlap the rounding/objective step with the next sweep (bit-identical; needs >= 2 threads)")
		pipeDepth   = flag.Int("pipeline-depth", 0, "pipelined rounding batches in flight (0 = 2, with -pipeline)")
		pipeWorkers = flag.Int("pipeline-match-workers", 0, "worker threads dedicated to pipelined rounding (0 = half, with -pipeline)")
		reorder     = flag.String("reorder", "", "locality reordering of S's row storage: none, auto, degree or rcm (bit-identical)")
		timing      = flag.Bool("timing", false, "print the per-step time breakdown")
		trace       = flag.Bool("trace", false, "print the per-evaluation objective trace")
		outFile     = flag.String("out", "", "write the matching as 'a b' pairs to this file")

		jsonOut       = flag.Bool("json", false, "write the result as JSON on stdout (suppresses the human summary)")
		progress      = flag.Bool("progress", false, "stream per-iteration progress lines to stderr")
		progressEvery = flag.Int("progress-every", 0, "report progress every N iterations (0 = every iteration, with -progress)")

		timeout    = flag.Duration("timeout", 0*time.Second, "stop after this wall time and report the best matching found (0 = unbounded)")
		checkpoint = flag.String("checkpoint", "", "periodically write a resumable checkpoint to this file (atomic rename)")
		ckptEvery  = flag.Int("checkpoint-every", 10, "iterations between checkpoints (with -checkpoint)")
		resume     = flag.String("resume", "", "resume from a checkpoint written by a previous run on the same problem")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result cache directory shared across runs (ignored with -resume or -timeout)")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: netalign -in problem.txt [flags]\n")
		fmt.Fprintf(w, "       netalign -a A.smat -b B.smat -l L.smat [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(w, "\nExit codes:\n")
		fmt.Fprintf(w, "  %d  success (including a run stopped early by convergence)\n", exitOK)
		fmt.Fprintf(w, "  %d  I/O failure (unreadable input, unwritable output)\n", exitIO)
		fmt.Fprintf(w, "  %d  usage or run error (bad flags, solver error)\n", exitUsage)
		fmt.Fprintf(w, "  %d  numeric guard stopped the run (best matching still reported)\n", exitNumerics)
		fmt.Fprintf(w, "  %d  -timeout deadline expired (best matching still reported)\n", exitDeadline)
		fmt.Fprintf(w, "  %d  interrupted by SIGINT/SIGTERM (best matching still reported)\n", exitCancelled)
	}
	flag.Parse()

	p, label, err := loadProblem(*in, *aFile, *bFile, *lFile, *alpha, *beta, *threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netalign: %v\n", err)
		if err == errUsage {
			flag.Usage()
			return exitUsage
		}
		return exitIO
	}
	if !*jsonOut {
		cli.DescribeProblem(p, label, os.Stdout)
	}

	// A first signal cancels the run cooperatively (the solver stops
	// at the next iteration boundary and reports its best matching); a
	// second one kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := cli.Align(p, cli.AlignOptions{
		Method: *method, Iters: *iters, Batch: *batch, Gamma: *gamma,
		MStep: *mstep, Approx: *approx, Matcher: *matcher, Fused: *fused,
		Pipeline: *pipeline, PipelineDepth: *pipeDepth,
		PipelineMatchWorkers: *pipeWorkers, Reorder: *reorder,
		Threads: *threads,
		Timing:  *timing, Trace: *trace,
		Timeout: *timeout, CheckpointPath: *checkpoint,
		CheckpointEvery: *ckptEvery, ResumePath: *resume, CacheDir: *cacheDir,
		JSON: *jsonOut, Progress: *progress, ProgressEvery: *progressEvery,
		ProgressOut: os.Stderr, Ctx: ctx,
	}, os.Stdout)
	numericStop := errors.Is(err, cli.ErrNumerics)
	if err != nil && !numericStop {
		fmt.Fprintf(os.Stderr, "netalign: %v\n", err)
		return exitUsage
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netalign: %v\n", err)
			return exitIO
		}
		err = problemio.WriteMatching(f, res.Matching)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "netalign: writing matching: %v\n", err)
			return exitIO
		}
		if !*jsonOut {
			fmt.Printf("matching written to %s\n", *outFile)
		}
	}
	switch {
	case numericStop:
		// The run ended because of a recurring numerical failure. The
		// best valid matching found before the failure was reported
		// (and written, with -out), but the run did not complete: make
		// that visible to scripts via the exit code.
		fmt.Fprintf(os.Stderr, "netalign: %v\n", err)
		return exitNumerics
	case res.Stopped == core.StopDeadline:
		fmt.Fprintf(os.Stderr, "netalign: deadline expired after %d iteration(s); best matching reported\n", res.Iterations)
		return exitDeadline
	case res.Stopped == core.StopCancelled:
		fmt.Fprintf(os.Stderr, "netalign: interrupted after %d iteration(s); best matching reported\n", res.Iterations)
		return exitCancelled
	}
	return exitOK
}

var errUsage = fmt.Errorf("-in (or -a/-b/-l) is required")

func loadProblem(in, aFile, bFile, lFile string, alpha, beta float64, threads int) (*core.Problem, string, error) {
	smatMode := aFile != "" || bFile != "" || lFile != ""
	if in == "" && !smatMode {
		return nil, "", errUsage
	}
	if smatMode {
		if aFile == "" || bFile == "" || lFile == "" {
			return nil, "", fmt.Errorf("SMAT input needs all of -a, -b and -l")
		}
		af, err := os.Open(aFile)
		if err != nil {
			return nil, "", err
		}
		defer af.Close()
		bf, err := os.Open(bFile)
		if err != nil {
			return nil, "", err
		}
		defer bf.Close()
		lf, err := os.Open(lFile)
		if err != nil {
			return nil, "", err
		}
		defer lf.Close()
		p, err := problemio.ReadSMATProblem(af, bf, lf, alpha, beta, threads)
		return p, lFile, err
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	p, err := problemio.Read(f, threads)
	return p, in, err
}

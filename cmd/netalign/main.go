// Command netalign runs a network alignment method on a problem file
// produced by gensynth (or by netalignmc.WriteProblem) and prints the
// solution summary; it is the CLI face of the library. The heavy
// lifting lives in internal/cli so it is unit-tested.
//
// Usage:
//
//	netalign -in problem.txt -method bp -iters 400 -batch 20 -approx
//	netalign -a A.smat -b B.smat -l L.smat -method mr -timing
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"netalignmc/internal/cli"
	"netalignmc/internal/core"
	"netalignmc/internal/problemio"
)

func main() {
	var (
		in      = flag.String("in", "", "problem file (netalign format); or use -a/-b/-l")
		aFile   = flag.String("a", "", "graph A in SMAT format (with -b and -l)")
		bFile   = flag.String("b", "", "graph B in SMAT format")
		lFile   = flag.String("l", "", "candidate graph L in SMAT format")
		alpha   = flag.Float64("alpha", 1, "objective weight on matching weight (SMAT input only)")
		beta    = flag.Float64("beta", 2, "objective weight on overlap (SMAT input only)")
		method  = flag.String("method", "bp", "alignment method: bp or mr")
		iters   = flag.Int("iters", 100, "iterations")
		batch   = flag.Int("batch", 1, "bp: rounding batch size r")
		gamma   = flag.Float64("gamma", 0, "bp: damping base (default 0.99); mr: initial step size (default 0.5)")
		mstep   = flag.Int("mstep", 10, "mr: stall window before halving the step size")
		approx  = flag.Bool("approx", false, "round with the parallel half-approximate matcher instead of exact matching")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		timing  = flag.Bool("timing", false, "print the per-step time breakdown")
		trace   = flag.Bool("trace", false, "print the per-evaluation objective trace")
		outFile = flag.String("out", "", "write the matching as 'a b' pairs to this file")

		timeout    = flag.Duration("timeout", 0*time.Second, "stop after this wall time and report the best matching found (0 = unbounded)")
		checkpoint = flag.String("checkpoint", "", "periodically write a resumable checkpoint to this file (atomic rename)")
		ckptEvery  = flag.Int("checkpoint-every", 10, "iterations between checkpoints (with -checkpoint)")
		resume     = flag.String("resume", "", "resume from a checkpoint written by a previous run on the same problem")
	)
	flag.Parse()

	p, label, err := loadProblem(*in, *aFile, *bFile, *lFile, *alpha, *beta, *threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netalign: %v\n", err)
		if err == errUsage {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
	cli.DescribeProblem(p, label, os.Stdout)

	res, err := cli.Align(p, cli.AlignOptions{
		Method: *method, Iters: *iters, Batch: *batch, Gamma: *gamma,
		MStep: *mstep, Approx: *approx, Threads: *threads,
		Timing: *timing, Trace: *trace,
		Timeout: *timeout, CheckpointPath: *checkpoint,
		CheckpointEvery: *ckptEvery, ResumePath: *resume,
	}, os.Stdout)
	numericStop := errors.Is(err, cli.ErrNumerics)
	if err != nil && !numericStop {
		fmt.Fprintf(os.Stderr, "netalign: %v\n", err)
		os.Exit(2)
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netalign: %v\n", err)
			os.Exit(1)
		}
		err = problemio.WriteMatching(f, res.Matching)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "netalign: writing matching: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("matching written to %s\n", *outFile)
	}
	if numericStop {
		// The run ended because of a recurring numerical failure. The
		// best valid matching found before the failure was reported
		// (and written, with -out), but the run did not complete: make
		// that visible to scripts via the exit code.
		fmt.Fprintf(os.Stderr, "netalign: %v\n", err)
		os.Exit(3)
	}
}

var errUsage = fmt.Errorf("-in (or -a/-b/-l) is required")

func loadProblem(in, aFile, bFile, lFile string, alpha, beta float64, threads int) (*core.Problem, string, error) {
	smatMode := aFile != "" || bFile != "" || lFile != ""
	if in == "" && !smatMode {
		return nil, "", errUsage
	}
	if smatMode {
		if aFile == "" || bFile == "" || lFile == "" {
			return nil, "", fmt.Errorf("SMAT input needs all of -a, -b and -l")
		}
		af, err := os.Open(aFile)
		if err != nil {
			return nil, "", err
		}
		defer af.Close()
		bf, err := os.Open(bFile)
		if err != nil {
			return nil, "", err
		}
		defer bf.Close()
		lf, err := os.Open(lFile)
		if err != nil {
			return nil, "", err
		}
		defer lf.Close()
		p, err := problemio.ReadSMATProblem(af, bf, lf, alpha, beta, threads)
		return p, lFile, err
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	p, err := problemio.Read(f, threads)
	return p, in, err
}

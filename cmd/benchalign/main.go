// Command benchalign measures the per-iteration cost of the alignment
// solvers on the paper's synthetic configurations and emits
// machine-readable JSON (the BENCH_*.json files committed at the repo
// root), so the performance trajectory of the hot path is recorded
// run over run instead of living in shell history.
//
// Each run solves one named configuration at one thread count and
// reports ns per iteration, allocations per iteration (from
// runtime.MemStats deltas), bytes per iteration, the per-step
// StepTimer breakdown, and the final objective (so perf entries double
// as a correctness cross-check: fused and unfused kernels must agree
// bit for bit).
//
// Usage:
//
//	benchalign -config fig2-bp -threads 1,8 -label pr3 -out BENCH_pr3.json
//	benchalign -config fig2-bp -scaling -label pr4 -out BENCH_pr4.json
//	benchalign -config fig2-bp -threads 1 -check BENCH_pr3.json \
//	    -baseline-label pr3 -max-alloc-ratio 1.2
//	benchalign -gate BENCH_pr4.json -gate-against BENCH_pr3.json \
//	    -gate-label pr4 -baseline-label pr3
//
// With -out, runs are appended to the existing document (if any), so a
// baseline recorded before an optimization and the post-optimization
// runs land in the same file. With -check, the measured allocations
// are compared against the named baseline entry and the process exits
// nonzero on a regression beyond the ratio. With -gate, no measurement
// happens at all: two committed documents are compared (1-thread
// ns/iter ratio plus a hardware-aware multi-thread speedup floor) and
// the process exits nonzero on a regression — the deterministic half
// of the CI bench-smoke gate.
//
// -scaling runs the configuration at 1,2,4,8 threads (unless -threads
// overrides the list) and prints a strong-scaling table: speedup and
// parallel efficiency per thread count, plus the per-step ns
// breakdown so the step that stops scaling is visible directly.
// -cpuprofile and -memprofile write pprof profiles covering the
// measured solves.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"netalignmc/internal/bench"
)

func main() {
	var (
		config     = flag.String("config", "fig2-bp", "named configuration: "+strings.Join(bench.ConfigNames(), ", "))
		threads    = flag.String("threads", "", "comma-separated thread counts (default 1, or 1,2,4,8 with -scaling)")
		iters      = flag.Int("iters", 40, "solver iterations per run")
		reps       = flag.Int("reps", 3, "repetitions (fastest rep reported)")
		seed       = flag.Int64("seed", 1, "problem seed")
		label      = flag.String("label", "dev", "label recorded on each run entry")
		matcher    = flag.String("matcher", "approx", "rounding matcher spec (e.g. exact, approx, suitor, auction(eps=1e-4))")
		fused      = flag.Bool("fused", true, "use the fused othermax+damping kernels (BP)")
		pipeline   = flag.Bool("pipeline", false, "overlap the rounding/objective step with the next sweep (bit-identical; needs >= 2 threads)")
		pipeDepth  = flag.Int("pipeline-depth", 0, "pipelined batches in flight (0 = default, with -pipeline)")
		reorder    = flag.String("reorder", "", "locality reordering of S's row storage: none, auto, degree or rcm (bit-identical)")
		figs       = flag.Bool("figs", false, "figure mode: sweep the fig4..fig7 configurations, barrier and pipelined, and emit the speedup/per-step curves (-out JSON, -report markdown)")
		figScale   = flag.Float64("fig-scale", 1, "-figs: scale each preset's vertex count by this factor in (0,1]")
		report     = flag.String("report", "", "-figs: write the markdown report to this file")
		scaling    = flag.Bool("scaling", false, "strong-scaling mode: measure 1,2,4,8 threads and print speedup/efficiency and per-step ns")
		out        = flag.String("out", "", "append runs to this JSON document")
		check      = flag.String("check", "", "compare against the baseline entries of this JSON document")
		baseLabel  = flag.String("baseline-label", "baseline", "label of the baseline entries for -check and -gate-against")
		maxAllocs  = flag.Float64("max-alloc-ratio", 1.2, "fail -check when allocs/iter exceeds baseline by this ratio")
		gate       = flag.String("gate", "", "gate this committed JSON document (no measurement)")
		gateBase   = flag.String("gate-against", "", "baseline JSON document for -gate")
		gateLabel  = flag.String("gate-label", "pr4", "label of the candidate entries for -gate")
		maxNsRatio = flag.Float64("max-ns-ratio", 1.10, "fail -gate when 1-thread ns/iter exceeds baseline by this ratio")
		minSpeedup = flag.Float64("min-speedup", 2.0, "multi-thread speedup floor for -gate (scaled down on low-CPU hosts)")
		spThreads  = flag.Int("speedup-threads", 8, "thread count the -gate speedup check inspects")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the measured solves to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile after the measured solves to this file")
		listConfig = flag.Bool("list", false, "list configurations and exit")
	)
	flag.Parse()

	if *listConfig {
		for _, name := range bench.ConfigNames() {
			fmt.Println(name)
		}
		return
	}

	if *gate != "" {
		runGate(*gate, *gateBase, *gateLabel, *baseLabel, *maxNsRatio, *minSpeedup, *spThreads, *config)
		return
	}

	threadSpec := *threads
	if threadSpec == "" {
		threadSpec = "1"
		if *scaling {
			threadSpec = "1,2,4,8"
		}
	}
	var threadList []int
	for _, part := range strings.Split(threadSpec, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			fmt.Fprintf(os.Stderr, "benchalign: bad thread count %q\n", part)
			os.Exit(2)
		}
		threadList = append(threadList, t)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *figs {
		// The -iters/-reps defaults (40/3) suit the small fig2
		// problems; the fig sweep defaults to 12/1 unless set.
		figIters, figReps := 0, 0
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "iters":
				figIters = *iters
			case "reps":
				figReps = *reps
			}
		})
		figThreads := threadList
		if *threads == "" {
			figThreads = nil // Figs default: 1,2,4,8
		}
		runFigs(bench.FigsOptions{
			Threads: figThreads, Iters: figIters, Reps: figReps,
			Seed: *seed, Label: *label, Scale: *figScale, Reorder: *reorder,
		}, *out, *report)
		return
	}

	runs, err := bench.Measure(bench.MeasureOptions{
		Config:        *config,
		Threads:       threadList,
		Iters:         *iters,
		Reps:          *reps,
		Seed:          *seed,
		Label:         *label,
		Matcher:       *matcher,
		Fused:         *fused,
		Pipeline:      *pipeline,
		PipelineDepth: *pipeDepth,
		Reorder:       *reorder,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
		os.Exit(1)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	for _, r := range runs {
		fmt.Printf("%-16s %-6s t=%-3d %12.0f ns/iter %10.1f allocs/iter %12.0f B/iter  obj=%.4f",
			r.Config, r.Method, r.Threads, r.NsPerIter, r.AllocsPerIter, r.BytesPerIter, r.Objective)
		if r.Pipeline {
			fmt.Printf("  hidden=%dns", r.HiddenMatchNs)
		}
		fmt.Println()
	}
	if *scaling {
		printScaling(runs)
	}

	if *out != "" {
		doc, err := bench.LoadOrNewDoc(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		doc.Runs = append(doc.Runs, runs...)
		doc.Derive()
		if err := doc.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d run(s) to %s\n", len(runs), *out)
	}

	if *check != "" {
		doc, err := bench.LoadDoc(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		failed := false
		for _, r := range runs {
			base, ok := doc.Find(*baseLabel, r.Config, r.Method, r.Threads)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchalign: no %q baseline for %s/%s t=%d in %s\n",
					*baseLabel, r.Config, r.Method, r.Threads, *check)
				failed = true
				continue
			}
			ratio := ratioOf(r.AllocsPerIter, base.AllocsPerIter)
			status := "ok"
			if ratio > *maxAllocs {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("check %s t=%d: allocs/iter %.1f vs baseline %.1f (ratio %.2f, limit %.2f) %s\n",
				r.Config, r.Threads, r.AllocsPerIter, base.AllocsPerIter, ratio, *maxAllocs, status)
		}
		if failed {
			os.Exit(1)
		}
	}
}

// runFigs runs the Figure 4-7 sweep and writes the combined JSON
// document (-out; note the figs schema, not the bench one) and the
// markdown speedup/per-step report (-report).
func runFigs(o bench.FigsOptions, outPath, reportPath string) {
	o.Progress = func(line string) { fmt.Println(line) }
	doc, err := bench.Figs(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
		os.Exit(1)
	}
	if outPath != "" {
		if err := doc.WriteFile(outPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d run(s) to %s\n", len(doc.Runs), outPath)
	}
	if reportPath != "" {
		if err := os.WriteFile(reportPath, []byte(doc.Markdown()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote report to %s\n", reportPath)
	} else if outPath == "" {
		fmt.Println()
		fmt.Print(doc.Markdown())
	}
}

// runGate compares two committed documents and exits nonzero on any
// gate failure. No solver runs happen: the gate judges recorded
// measurements, so it is deterministic on any CI machine.
func runGate(docPath, basePath, label, baseLabel string, maxNsRatio, minSpeedup float64, spThreads int, speedupConfig string) {
	if basePath == "" {
		fmt.Fprintln(os.Stderr, "benchalign: -gate requires -gate-against")
		os.Exit(2)
	}
	doc, err := bench.LoadDoc(docPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
		os.Exit(1)
	}
	base, err := bench.LoadDoc(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
		os.Exit(1)
	}
	o := bench.DefaultGateOptions(label, baseLabel)
	o.MaxNsRatio = maxNsRatio
	o.MinSpeedup = minSpeedup
	o.SpeedupThreads = spThreads
	o.SpeedupConfigs = []string{speedupConfig}
	report, gerr := bench.Gate(doc, base, o)
	for _, line := range report {
		fmt.Println(line)
	}
	if gerr != nil {
		fmt.Fprintf(os.Stderr, "benchalign: %v\n", gerr)
		os.Exit(1)
	}
}

// printScaling renders the strong-scaling view of one -scaling
// invocation: speedup and efficiency against the 1-thread run, then
// the per-step ns breakdown per thread count so the step that limits
// scaling is visible without a profiler.
func printScaling(runs []bench.Run) {
	var base *bench.Run
	for i := range runs {
		if runs[i].Threads == 1 {
			base = &runs[i]
			break
		}
	}
	if base == nil || base.NsPerIter <= 0 {
		return
	}
	fmt.Println()
	fmt.Printf("strong scaling (%s, vs t=1):\n", base.Config)
	fmt.Printf("  %-8s %14s %9s %11s\n", "threads", "ns/iter", "speedup", "efficiency")
	for _, r := range runs {
		sp := base.NsPerIter / r.NsPerIter
		fmt.Printf("  %-8d %14.0f %8.2fx %10.1f%%\n",
			r.Threads, r.NsPerIter, sp, 100*sp/float64(r.Threads))
	}

	stepSet := map[string]bool{}
	for _, r := range runs {
		for s := range r.StepNs {
			stepSet[s] = true
		}
	}
	if len(stepSet) == 0 {
		return
	}
	steps := make([]string, 0, len(stepSet))
	for s := range stepSet {
		steps = append(steps, s)
	}
	sort.Strings(steps)
	fmt.Println()
	fmt.Printf("  per-step ns (fastest rep, whole solve):\n")
	fmt.Printf("  %-24s", "step")
	for _, r := range runs {
		fmt.Printf(" %12s", fmt.Sprintf("t=%d", r.Threads))
	}
	fmt.Println()
	for _, s := range steps {
		fmt.Printf("  %-24s", s)
		for _, r := range runs {
			fmt.Printf(" %12d", r.StepNs[s])
		}
		fmt.Println()
	}
}

// ratioOf compares allocation counts, treating a zero baseline as "any
// allocation at all is a regression" but tolerating exact zero.
func ratioOf(cur, base float64) float64 {
	if base <= 0 {
		if cur <= 0 {
			return 1
		}
		return cur + 1 // zero-alloc baseline: any allocs trip the gate
	}
	return cur / base
}

// Command benchalign measures the per-iteration cost of the alignment
// solvers on the paper's synthetic configurations and emits
// machine-readable JSON (the BENCH_*.json files committed at the repo
// root), so the performance trajectory of the hot path is recorded
// run over run instead of living in shell history.
//
// Each run solves one named configuration at one thread count and
// reports ns per iteration, allocations per iteration (from
// runtime.MemStats deltas), bytes per iteration, the per-step
// StepTimer breakdown, and the final objective (so perf entries double
// as a correctness cross-check: fused and unfused kernels must agree
// bit for bit).
//
// Usage:
//
//	benchalign -config fig2-bp -threads 1,8 -label pr3 -out BENCH_pr3.json
//	benchalign -config fig2-bp -threads 1 -check BENCH_pr3.json \
//	    -baseline-label pr3 -max-alloc-ratio 1.2
//
// With -out, runs are appended to the existing document (if any), so a
// baseline recorded before an optimization and the post-optimization
// runs land in the same file. With -check, the measured allocations
// are compared against the named baseline entry and the process exits
// nonzero on a regression beyond the ratio — the CI bench-smoke gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netalignmc/internal/bench"
)

func main() {
	var (
		config     = flag.String("config", "fig2-bp", "named configuration: "+strings.Join(bench.ConfigNames(), ", "))
		threads    = flag.String("threads", "1", "comma-separated thread counts")
		iters      = flag.Int("iters", 40, "solver iterations per run")
		reps       = flag.Int("reps", 3, "repetitions (fastest rep reported)")
		seed       = flag.Int64("seed", 1, "problem seed")
		label      = flag.String("label", "dev", "label recorded on each run entry")
		matcher    = flag.String("matcher", "approx", "rounding matcher spec (e.g. exact, approx, suitor, auction(eps=1e-4))")
		fused      = flag.Bool("fused", true, "use the fused othermax+damping kernels (BP)")
		out        = flag.String("out", "", "append runs to this JSON document")
		check      = flag.String("check", "", "compare against the baseline entries of this JSON document")
		baseLabel  = flag.String("baseline-label", "baseline", "label of the baseline entries for -check")
		maxAllocs  = flag.Float64("max-alloc-ratio", 1.2, "fail -check when allocs/iter exceeds baseline by this ratio")
		listConfig = flag.Bool("list", false, "list configurations and exit")
	)
	flag.Parse()

	if *listConfig {
		for _, name := range bench.ConfigNames() {
			fmt.Println(name)
		}
		return
	}

	var threadList []int
	for _, part := range strings.Split(*threads, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			fmt.Fprintf(os.Stderr, "benchalign: bad thread count %q\n", part)
			os.Exit(2)
		}
		threadList = append(threadList, t)
	}

	runs, err := bench.Measure(bench.MeasureOptions{
		Config:  *config,
		Threads: threadList,
		Iters:   *iters,
		Reps:    *reps,
		Seed:    *seed,
		Label:   *label,
		Matcher: *matcher,
		Fused:   *fused,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
		os.Exit(1)
	}
	for _, r := range runs {
		fmt.Printf("%-16s %-6s t=%-3d %12.0f ns/iter %10.1f allocs/iter %12.0f B/iter  obj=%.4f\n",
			r.Config, r.Method, r.Threads, r.NsPerIter, r.AllocsPerIter, r.BytesPerIter, r.Objective)
	}

	if *out != "" {
		doc, err := bench.LoadOrNewDoc(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		doc.Runs = append(doc.Runs, runs...)
		doc.Derive()
		if err := doc.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d run(s) to %s\n", len(runs), *out)
	}

	if *check != "" {
		doc, err := bench.LoadDoc(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchalign: %v\n", err)
			os.Exit(1)
		}
		failed := false
		for _, r := range runs {
			base, ok := doc.Find(*baseLabel, r.Config, r.Method, r.Threads)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchalign: no %q baseline for %s/%s t=%d in %s\n",
					*baseLabel, r.Config, r.Method, r.Threads, *check)
				failed = true
				continue
			}
			ratio := ratioOf(r.AllocsPerIter, base.AllocsPerIter)
			status := "ok"
			if ratio > *maxAllocs {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("check %s t=%d: allocs/iter %.1f vs baseline %.1f (ratio %.2f, limit %.2f) %s\n",
				r.Config, r.Threads, r.AllocsPerIter, base.AllocsPerIter, ratio, *maxAllocs, status)
		}
		if failed {
			os.Exit(1)
		}
	}
}

// ratioOf compares allocation counts, treating a zero baseline as "any
// allocation at all is a regression" but tolerating exact zero.
func ratioOf(cur, base float64) float64 {
	if base <= 0 {
		if cur <= 0 {
			return 1
		}
		return cur + 1 // zero-alloc baseline: any allocs trip the gate
	}
	return cur / base
}

// Command gensynth generates network alignment problem instances in
// the SMAT-like text format: the paper's synthetic power-law problems
// or the Table II real-dataset stand-ins.
//
// Usage:
//
//	gensynth -type synthetic -n 400 -dbar 10 -seed 1 -o problem.txt
//	gensynth -preset fig5 -o fig5.txt
//	gensynth -type lcsh-wiki -scale 0.02 -o wiki.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netalignmc/internal/cli"
	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/problemio"
)

func main() {
	var (
		typ    = flag.String("type", "synthetic", "problem type: synthetic, dmela-scere, homo-musm, lcsh-wiki, lcsh-rameau")
		preset = flag.String("preset", "", "synthetic scaling preset at the paper's Figure 4-7 sizes: "+strings.Join(gen.FigPresetNames(), ", ")+" (overrides -n/-dbar; -scale in (0,1) shrinks it)")
		n      = flag.Int("n", 400, "synthetic: number of vertices of the base graph")
		dbar   = flag.Float64("dbar", 10, "synthetic: expected degree of random candidate edges in L")
		p      = flag.Float64("perturb", 0.02, "synthetic: edge-addition probability deriving A and B")
		alpha  = flag.Float64("alpha", 1, "objective weight on matching weight")
		beta   = flag.Float64("beta", 2, "objective weight on overlap")
		scale  = flag.Float64("scale", 0.02, "stand-ins and -preset: size scale in (0,1]")
		seed   = flag.Int64("seed", 42, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
		smat   = flag.String("smat", "", "also write A/B/L as SMAT files with this path prefix")
	)
	flag.Parse()

	if *preset != "" && *typ != "synthetic" {
		fmt.Fprintf(os.Stderr, "gensynth: -preset only applies to -type synthetic (got %q)\n", *typ)
		os.Exit(1)
	}
	// The -scale default (0.02) sizes the real-dataset stand-ins; a
	// preset is full size unless -scale is given explicitly.
	genScale := *scale
	if *preset != "" {
		scaleSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				scaleSet = true
			}
		})
		if !scaleSet {
			genScale = 1
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gensynth: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	prob, err := cli.Generate(cli.GenerateOptions{
		Type: *typ, N: *n, DBar: *dbar, Perturb: *p,
		Alpha: *alpha, Beta: *beta, Scale: genScale, Seed: *seed,
		Preset: *preset,
	}, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gensynth: %v\n", err)
		os.Exit(1)
	}
	if *smat != "" {
		writeSMAT := func(suffix string, write func(f *os.File) error) {
			f, err := os.Create(*smat + suffix)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gensynth: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := write(f); err != nil {
				fmt.Fprintf(os.Stderr, "gensynth: %v\n", err)
				os.Exit(1)
			}
		}
		writeSMAT("-A.smat", func(f *os.File) error { return problemio.WriteGraphSMAT(f, prob.A) })
		writeSMAT("-B.smat", func(f *os.File) error { return problemio.WriteGraphSMAT(f, prob.B) })
		writeSMAT("-L.smat", func(f *os.File) error { return problemio.WriteLSMAT(f, prob.L) })
	}
	st := core.ProblemStats(*typ, prob)
	fmt.Fprintf(os.Stderr, "generated %s: |V_A|=%d |V_B|=%d |E_L|=%d nnz(S)=%d\n",
		st.Name, st.VA, st.VB, st.EL, st.NnzS)
}

// Command netalignd serves network-alignment solves as managed jobs
// over an HTTP/JSON API.
//
// Usage:
//
//	netalignd [flags]
//
// Jobs are submitted as JSON to POST /v1/jobs (an inline problem, an
// uploaded SMAT/MTX triple, or a generator spec), run on a bounded
// worker pool, checkpoint periodically into the spool directory, and
// stream live progress over SSE at GET /v1/jobs/{id}/events. On
// SIGTERM (or POST /v1/drain) the daemon drains: running jobs
// checkpoint and stop, queued jobs are handed off to their ring
// successors in cluster mode (otherwise they stay queued), and the
// next start resumes every interrupted job bit-identically from its
// last checkpoint.
//
// Endpoints:
//
//	POST   /v1/jobs             submit (202; 400 bad spec, 413 body too
//	                            large, 429 queue full, tenant quota or
//	                            memory pressure, 503 draining or disk
//	                            pressure)
//	GET    /v1/jobs             list jobs (?state=, ?tenant= and
//	                            ?class= filters compose, e.g.
//	                            ?state=quarantined&tenant=team-a)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result final result JSON (409 until terminal)
//	GET    /v1/jobs/{id}/events live progress (SSE)
//	POST   /v1/jobs/{id}/requeue rerun a quarantined job (409 otherwise)
//	DELETE /v1/jobs/{id}        cooperative cancel
//	GET    /v1/cache/{key}      cached result by content address (peer
//	                            cache fill; 404 cache_miss otherwise)
//	POST   /v1/drain            begin a graceful drain (202; idempotent)
//	POST   /v1/handoff          admit a draining peer's exported job
//	                            (cluster-internal; same admission gates
//	                            as POST /v1/jobs)
//	GET    /healthz             liveness (always 200 while serving)
//	GET    /readyz              readiness (503 while draining or under
//	                            refuse-level pressure)
//	GET    /metrics             Prometheus text metrics
//	GET    /debug/vars          expvar (includes the manager snapshot)
//	GET    /debug/pprof/...     profiling
//
// Cluster mode: -peers lists every node's base URL and -self names
// this node's own entry; on a local cache miss the node then probes
// its key's ring neighbors via GET /v1/cache/{key} before solving.
// Pair with the netalignrouter command, which consistent-hashes
// submissions across the same peer list.
//
// Exit codes: 0 after a clean drain, 1 on startup or serve failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netalignmc/internal/cluster"
	"netalignmc/internal/server"
)

func main() {
	os.Exit(run())
}

// parseTenantWeights parses the -tenant-weights value: comma-separated
// name=weight pairs with positive integer weights.
func parseTenantWeights(s string) (map[string]int64, error) {
	weights := make(map[string]int64)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("-tenant-weights: %q is not name=weight", pair)
		}
		w, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights: %q needs a positive integer weight", pair)
		}
		weights[strings.TrimSpace(name)] = w
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("-tenant-weights: no name=weight pairs in %q", s)
	}
	return weights, nil
}

func run() int {
	fs := flag.NewFlagSet("netalignd", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address")
	spool := fs.String("spool", "netalignd-spool", "durable job directory")
	workers := fs.Int("workers", 2, "max concurrent solves")
	queue := fs.Int("queue", 16, "max queued jobs before submissions get 429")
	ckptEvery := fs.Int("checkpoint-every", 10, "default checkpoint interval in iterations")
	threads := fs.Int("threads", 0, "default threads per solve (0 = GOMAXPROCS/workers)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for running jobs to stop on shutdown")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "in-memory result cache budget in bytes (0 disables caching and coalescing)")
	cacheDisk := fs.Bool("cache-disk", true, "persist cached results under <spool>/cache, surviving restarts")
	retryBudget := fs.Int("retry-budget", 3, "retries per job before quarantine (-1 disables retries: failures are terminal)")
	stallTimeout := fs.Duration("stall-timeout", 2*time.Minute, "quarantine-countable cancel of a run whose iterations stop advancing this long, scaled up for large problems (0 disables)")
	crashLoopLimit := fs.Int("crash-loop-limit", 3, "quarantine a job found mid-running across this many consecutive daemon restarts (-1 disables)")
	minDiskBytes := fs.Int64("min-disk-bytes", 0, "spool free-space floor: degrade below 2x, refuse submissions below it (0 disables)")
	maxRSSBytes := fs.Int64("max-rss-bytes", 0, "shed new submissions with 429 while process RSS exceeds this (0 disables)")
	tenantWeights := fs.String("tenant-weights", "", "per-tenant fair-share weights as name=weight pairs, e.g. 'team-a=3,team-b=1' (unlisted tenants get weight 1)")
	tenantQuota := fs.Int("tenant-quota", 0, "max queued jobs per tenant before that tenant's submissions get 429 (0 disables)")
	preempt := fs.Bool("preempt", false, "checkpoint-preempt the youngest running batch job when an interactive job arrives and all workers are busy")
	peers := fs.String("peers", "", "comma-separated base URLs of every cluster node (enables peer cache fill)")
	self := fs.String("self", "", "this node's own base URL within -peers (never probed)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per ring member; must match the router's setting (0 = default)")
	peerProbes := fs.Int("peer-probes", 0, "max ring neighbors probed per cache miss (0 = default)")
	peerBudget := fs.Duration("peer-fill-budget", 0, "total wall-clock budget for one peer cache fill across all probes (0 = default)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: netalignd [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Serve network-alignment solves as durable jobs over HTTP/JSON.\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nExit codes:\n  0  clean shutdown (drained)\n  1  startup or serve failure\n")
	}
	_ = fs.Parse(os.Args[1:])

	log.SetPrefix("netalignd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	cacheDir := ""
	if *cacheDisk && *cacheBytes > 0 {
		cacheDir = filepath.Join(*spool, "cache")
	}
	cfg := server.Config{
		Spool:           *spool,
		Workers:         *workers,
		QueueDepth:      *queue,
		CheckpointEvery: *ckptEvery,
		Threads:         *threads,
		CacheBytes:      *cacheBytes,
		CacheDir:        cacheDir,
		RetryBudget:     *retryBudget,
		StallTimeout:    *stallTimeout,
		CrashLoopLimit:  *crashLoopLimit,
		MinDiskBytes:    *minDiskBytes,
		MaxRSSBytes:     *maxRSSBytes,
		TenantQuota:     *tenantQuota,
		Preempt:         *preempt,
	}
	if *tenantWeights != "" {
		weights, err := parseTenantWeights(*tenantWeights)
		if err != nil {
			log.Print(err)
			return 1
		}
		cfg.TenantWeights = weights
	}
	if *peers != "" {
		// NewPeerFiller returns a nil pointer when the peer list leaves
		// nothing to probe; assign only a live filler so the manager's
		// interface nil-checks stay meaningful.
		if pf := cluster.NewPeerFiller(cluster.PeerFillConfig{
			Self:      *self,
			Peers:     strings.Split(*peers, ","),
			VNodes:    *vnodes,
			MaxProbes: *peerProbes,
			Budget:    *peerBudget,
		}); pf != nil {
			cfg.PeerFiller = pf
			cfg.Handoff = pf
			pf.Start()
			defer pf.Stop()
			log.Printf("peer cache fill and drain handoff enabled (%d peers)", len(strings.Split(*peers, ",")))
		}
	}
	mgr, err := server.NewManager(cfg)
	if err != nil {
		log.Print(err)
		return 1
	}
	api := server.NewServer(mgr)
	api.PublishExpvars()
	// POST /v1/drain follows the exact SIGTERM path: closing drainc
	// unblocks the select below, so API-initiated drains get the same
	// checkpoint + handoff + http-shutdown sequence as a signal. The
	// server invokes the func at most once.
	drainc := make(chan struct{})
	api.SetDrainFunc(func() { close(drainc) })

	// Slow-client protection. WriteTimeout bounds ordinary responses;
	// SSE streams opt out per write via http.NewResponseController, so
	// it does not cap a long solve's event stream.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (spool %s, %d workers, queue %d)",
			*addr, *spool, *workers, *queue)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Print(err)
		return 1
	case <-ctx.Done():
	case <-drainc:
		log.Print("drain requested over the API")
	}

	log.Printf("draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the pool first: it closes every job's event broker, which
	// ends the SSE streams httpSrv.Shutdown would otherwise wait on.
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v (interrupted jobs resume on next start)", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("stopped")
	return 0
}

// Command verify checks a problem file's internal consistency (the
// derived overlap matrix S against its definition) and, optionally, a
// matching file against the problem — the validation companion to
// netalign's solver output.
//
// Usage:
//
//	verify -in problem.txt
//	verify -in problem.txt -matching m.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"netalignmc/internal/cli"
	"netalignmc/internal/matching"
	"netalignmc/internal/problemio"
)

func main() {
	var (
		in      = flag.String("in", "", "problem file (netalign format, required)")
		mFile   = flag.String("matching", "", "matching file ('a b' pairs) to verify against the problem")
		samples = flag.Int("samples", 10000, "random S entries to cross-check (0 = exhaustive)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "verify: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verify: %v\n", err)
		os.Exit(1)
	}
	p, err := problemio.Read(f, 0)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "verify: %v\n", err)
		os.Exit(1)
	}
	var m *matching.Result
	if *mFile != "" {
		mf, err := os.Open(*mFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
			os.Exit(1)
		}
		m, err = problemio.ReadMatching(mf, p.L)
		mf.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
			os.Exit(1)
		}
	}
	if err := cli.Verify(p, m, cli.VerifyOptions{Samples: *samples}, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "verify: FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("OK")
}

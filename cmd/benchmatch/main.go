// Command benchmatch benchmarks the matching algorithms in isolation
// on random bipartite graphs — the experiment style of Halappanavar et
// al., whose multicore locally-dominant matcher the paper adopts.
//
// Usage:
//
//	benchmatch -n 20000 -deg 8 -threads 1,2,4 -reps 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/graph"
	"netalignmc/internal/matching"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "vertices per side")
		deg     = flag.Float64("deg", 8, "expected degree")
		seed    = flag.Int64("seed", 1, "random seed")
		reps    = flag.Int("reps", 3, "repetitions (minimum time reported)")
		threads = flag.String("threads", "1", "comma-separated thread counts for the parallel matchers")
		exact   = flag.Bool("exact", false, "also run the exact matcher (slow on large graphs)")
		general = flag.Bool("general", false, "also benchmark the general-graph matchers on an R-MAT graph")
		scale   = flag.Int("rmat-scale", 14, "R-MAT scale for -general (2^scale vertices)")
	)
	flag.Parse()

	var threadList []int
	for _, part := range strings.Split(*threads, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			fmt.Fprintf(os.Stderr, "benchmatch: bad thread count %q\n", part)
			os.Exit(2)
		}
		threadList = append(threadList, t)
	}

	rng := rand.New(rand.NewSource(*seed))
	p := *deg / float64(*n)
	var edges []bipartite.WeightedEdge
	for a := 0; a < *n; a++ {
		// Expected deg candidates per vertex, geometric-free sampling
		// is overkill here; binomial thinning per vertex suffices.
		k := 0
		for k < int(*deg*2+4) {
			if rng.Float64() < p*float64(*n)/(*deg*2+4) {
				edges = append(edges, bipartite.WeightedEdge{
					A: a, B: rng.Intn(*n), W: rng.Float64(),
				})
			}
			k++
		}
	}
	g, err := bipartite.New(*n, *n, edges)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmatch: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %d + %d vertices, %d edges\n\n", g.NA, g.NB, g.NumEdges())

	bench := func(name string, m matching.Matcher, t int) {
		best := time.Duration(0)
		var r *matching.Result
		for i := 0; i < *reps; i++ {
			start := time.Now()
			r = m(g, t)
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
		}
		if err := r.Validate(g); err != nil {
			fmt.Fprintf(os.Stderr, "benchmatch: %s: invalid matching: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%-26s t=%-3d weight=%12.2f card=%8d time=%v\n",
			name, t, r.Weight, r.Card, best.Round(time.Microsecond))
	}

	if *exact {
		bench("exact", matching.Exact, 1)
	}
	bench("greedy", matching.Greedy, 1)
	bench("path-growing", matching.PathGrowing, 1)
	bench("auction(1e-4)", matching.NewAuctionMatcher(1e-4), 1)
	for _, t := range threadList {
		bench("locally-dominant", matching.NewLocallyDominantMatcher(matching.LocallyDominantOptions{}), t)
		bench("locally-dominant-1side", matching.NewLocallyDominantMatcher(matching.LocallyDominantOptions{OneSidedInit: true}), t)
		bench("suitor", matching.Suitor, t)
	}

	if *general {
		fmt.Println("\ngeneral-graph matchers on R-MAT:")
		gg := graph.RMAT(rng, graph.DefaultRMAT(*scale, 8))
		weights := map[graph.Edge]float64{}
		for _, e := range gg.Edges() {
			weights[e] = rng.Float64()
		}
		wg, err := matching.NewWeightedGraph(gg, weights)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmatch: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("graph: %d vertices, %d edges (max degree %d)\n",
			gg.NumVertices(), gg.NumEdges(), gg.MaxDegree())
		benchGeneral := func(name string, f func() (mate []int, w float64)) {
			best := time.Duration(0)
			var w float64
			var matched int
			for i := 0; i < *reps; i++ {
				start := time.Now()
				mate, wt := f()
				el := time.Since(start)
				if best == 0 || el < best {
					best = el
				}
				w = wt
				matched = 0
				for _, m := range mate {
					if m >= 0 {
						matched++
					}
				}
			}
			fmt.Printf("%-26s weight=%12.2f matched=%8d time=%v\n",
				name, w, matched, best.Round(time.Microsecond))
		}
		benchGeneral("greedy-general", func() ([]int, float64) { return matching.GreedyGeneral(wg) })
		for _, t := range threadList {
			t := t
			benchGeneral(fmt.Sprintf("locally-dominant t=%d", t), func() ([]int, float64) {
				return matching.LocallyDominantGeneral(wg, t)
			})
			benchGeneral(fmt.Sprintf("suitor t=%d", t), func() ([]int, float64) {
				return matching.SuitorGeneral(wg, t)
			})
		}
	}
}

// Command netalignrouter is the cluster front door for netalignd: a
// thin HTTP proxy that consistent-hashes each job submission onto one
// of a static set of backends, so identical submissions always land
// where their cached result — or in-flight single-flight execution —
// already lives.
//
// Usage:
//
//	netalignrouter -peers http://h1:7070,http://h2:7070 [flags]
//
// The router holds no durable state. It probes every backend's
// /readyz on an interval; a backend that stops answering (or answers
// 503) leaves the ring and its keys drain to their ring successors
// until it recovers. A submission whose owner is unreachable or
// refuses with 503 fails over to the successor; 4xx answers —
// including 429 backpressure — are relayed to the client verbatim.
// Per-job routes (status, result, cancel, SSE events, requeue) are
// proxied raw to whichever node admitted the job. Tenant-aware
// fields pass through untouched: submissions keep their tenant/class,
// GET /v1/jobs forwards ?tenant= and ?class= filters to every backend,
// and tenant-scoped 429s (with their Retry-After hints) are relayed
// verbatim.
//
// Endpoints: the full /v1 job API, plus
//
//	GET /healthz   router liveness (always 200)
//	GET /readyz    200 while at least one backend is up
//	GET /metrics   router counters, per-node gauges, and a cluster
//	               rollup aggregated from every reachable backend —
//	               including per-tenant queue/running/submitted series
//	               summed across nodes
//
// Exit codes: 0 after a clean shutdown, 1 on startup or serve failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netalignmc/internal/cluster"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("netalignrouter", flag.ExitOnError)
	addr := fs.String("addr", ":7080", "listen address")
	peers := fs.String("peers", "", "comma-separated base URLs of the netalignd backends (required)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per ring member; must match the backends' -vnodes (0 = default)")
	probeEvery := fs.Duration("probe-every", time.Second, "backend readiness probe interval")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
	hedgeAfter := fs.Duration("hedge-after", 250*time.Millisecond, "hedge idempotent reads (status/result/cache) to the ring successor after this delay; set near the fleet's p95 read latency (0 disables)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: netalignrouter -peers <url,url,...> [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Consistent-hash router over a set of netalignd backends.\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nExit codes:\n  0  clean shutdown\n  1  startup or serve failure\n")
	}
	_ = fs.Parse(os.Args[1:])

	log.SetPrefix("netalignrouter: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	if *peers == "" {
		log.Print("-peers is required")
		fs.Usage()
		return 1
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:        strings.Split(*peers, ","),
		VNodes:       *vnodes,
		ProbeEvery:   *probeEvery,
		ProbeTimeout: *probeTimeout,
		HedgeAfter:   *hedgeAfter,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	router.Start()
	defer router.Stop()

	// WriteTimeout stays 0: the router proxies SSE streams and result
	// downloads whose duration it cannot bound; backends enforce their
	// own per-write deadlines.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("routing %s across %d backends", *addr, len(router.Ring().Nodes()))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Print(err)
		return 1
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("stopped")
	return 0
}

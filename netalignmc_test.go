package netalignmc_test

import (
	"bytes"
	"math"
	"testing"

	netalignmc "netalignmc"
)

// buildTinyProblem assembles the 2x2 identity problem through the
// public API only, exercising every construction entry point.
func buildTinyProblem(t testing.TB) *netalignmc.Problem {
	t.Helper()
	ab := netalignmc.NewGraphBuilder(2)
	ab.AddEdge(0, 1)
	a := ab.Build()
	b := netalignmc.GraphFromEdges(2, []netalignmc.GraphEdge{{U: 0, V: 1}})
	l, err := netalignmc.NewCandidateGraph(2, 2, []netalignmc.CandidateEdge{
		{A: 0, B: 0, W: 1}, {A: 0, B: 1, W: 1}, {A: 1, B: 0, W: 1}, {A: 1, B: 1, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := netalignmc.NewProblem(a, b, l, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPublicAPIQuickstart(t *testing.T) {
	p := buildTinyProblem(t)
	res := p.BPAlign(netalignmc.BPOptions{Iterations: 10, Rounding: netalignmc.ApproxMatcher})
	if err := res.Matching.Validate(p.L); err != nil {
		t.Fatal(err)
	}
	// Either perfect matching of the K2s gives objective 4.
	if res.Objective != 4 {
		t.Fatalf("objective = %g, want 4", res.Objective)
	}
}

func TestPublicAPIMatchers(t *testing.T) {
	p := buildTinyProblem(t)
	for name, m := range map[string]netalignmc.Matcher{
		"exact":  netalignmc.ExactMatcher,
		"approx": netalignmc.ApproxMatcher,
		"greedy": netalignmc.GreedyMatcher,
		"custom": netalignmc.NewLocallyDominantMatcher(netalignmc.LocallyDominantOptions{OneSidedInit: false}),
	} {
		r := m(p.L, 1)
		if err := r.Validate(p.L); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Card != 2 {
			t.Fatalf("%s: matched %d edges, want 2", name, r.Card)
		}
	}
}

func TestPublicAPISynthetic(t *testing.T) {
	o := netalignmc.DefaultSynthetic(3, 5)
	o.N = 50
	p, err := netalignmc.NewSyntheticProblem(o)
	if err != nil {
		t.Fatal(err)
	}
	res := p.KlauAlign(netalignmc.MROptions{Iterations: 15})
	if frac := netalignmc.CorrectMatchFraction(res.Matching); frac < 0.5 {
		t.Fatalf("recovered only %.2f of planted alignment", frac)
	}
}

func TestPublicAPIStandInAndStats(t *testing.T) {
	p, err := netalignmc.DmelaScere(0.01, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := netalignmc.StatsOf("dmela-scere", p)
	if st.VA < 2 || st.EL == 0 {
		t.Fatalf("stats %+v", st)
	}
	q, err := netalignmc.NewStandInProblem(netalignmc.StandInOptions{
		Name: "custom", NA: 60, NB: 50, LDegree: 3, Gamma: 2.1,
		MinDeg: 1, MaxDeg: 10, OverlapFraction: 0.5, Alpha: 1, Beta: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.A.NumVertices() != 60 {
		t.Fatal("custom stand-in wrong size")
	}
}

func TestPublicAPIProblemIO(t *testing.T) {
	p := buildTinyProblem(t)
	var buf bytes.Buffer
	if err := netalignmc.WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := netalignmc.ReadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.L.NumEdges() != p.L.NumEdges() || q.NNZS() != p.NNZS() {
		t.Fatal("round trip mismatch")
	}
}

func TestPublicAPITimerAndSchedule(t *testing.T) {
	p := buildTinyProblem(t)
	timer := netalignmc.NewStepTimer()
	p.BPAlign(netalignmc.BPOptions{
		Iterations: 3, Timer: timer, Sched: netalignmc.ScheduleStatic,
	})
	if timer.GrandTotal() <= 0 {
		t.Fatal("timer recorded nothing")
	}
	if netalignmc.ScheduleDynamic.String() != "dynamic" {
		t.Fatal("schedule constants wrong")
	}
}

func TestPublicAPINewMatchers(t *testing.T) {
	p := buildTinyProblem(t)
	for name, m := range map[string]netalignmc.Matcher{
		"suitor":       netalignmc.SuitorMatcher,
		"path-growing": netalignmc.PathGrowingMatcher,
		"auction":      netalignmc.NewAuctionMatcher(1e-9),
	} {
		r := m(p.L, 1)
		if err := r.Validate(p.L); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Card != 2 {
			t.Fatalf("%s matched %d edges", name, r.Card)
		}
	}
	hk := netalignmc.HopcroftKarp(p.L, nil)
	if hk.Card != 2 {
		t.Fatalf("HopcroftKarp card %d", hk.Card)
	}
}

func TestPublicAPIGeneralMatcher(t *testing.T) {
	g := netalignmc.GraphFromEdges(4, []netalignmc.GraphEdge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3},
	})
	wg, err := netalignmc.NewWeightedGraph(g, map[netalignmc.GraphEdge]float64{
		{U: 0, V: 1}: 1, {U: 1, V: 2}: 5, {U: 2, V: 3}: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mate, w := netalignmc.LocallyDominantGeneral(wg, 2)
	if mate[1] != 2 || mate[2] != 1 || w != 5 {
		t.Fatalf("general matcher mate=%v w=%g", mate, w)
	}
	sm, sw := netalignmc.SuitorGeneral(wg, 2)
	gm, gw := netalignmc.GreedyGeneral(wg)
	if sw != 5 || gw != 5 || sm[1] != 2 || gm[1] != 2 {
		t.Fatalf("suitor/greedy general wrong: %v/%g %v/%g", sm, sw, gm, gw)
	}
	bm, card := netalignmc.MaxCardinalityGeneral(g)
	if card != 2 || bm[0] < 0 {
		t.Fatalf("blossom card=%d mate=%v", card, bm)
	}
}

func TestPublicAPISMAT(t *testing.T) {
	p := buildTinyProblem(t)
	var a, b, l bytes.Buffer
	if err := netalignmc.WriteGraphSMAT(&a, p.A); err != nil {
		t.Fatal(err)
	}
	if err := netalignmc.WriteGraphSMAT(&b, p.B); err != nil {
		t.Fatal(err)
	}
	if err := netalignmc.WriteCandidateSMAT(&l, p.L); err != nil {
		t.Fatal(err)
	}
	q, err := netalignmc.ReadSMATProblem(&a, &b, &l, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.NNZS() != p.NNZS() || q.L.NumEdges() != p.L.NumEdges() {
		t.Fatal("SMAT round trip mismatch")
	}
}

func TestPublicAPIBaselineAndSteering(t *testing.T) {
	o := netalignmc.DefaultSynthetic(4, 21)
	o.N = 40
	p, err := netalignmc.NewSyntheticProblem(o)
	if err != nil {
		t.Fatal(err)
	}
	base := p.BaselineAlign(netalignmc.BaselineOptions{Kind: netalignmc.BaselineIsoRank})
	if base.Objective <= 0 {
		t.Fatal("baseline failed")
	}
	res := p.BPAlign(netalignmc.BPOptions{Iterations: 10, Damp: netalignmc.DampConstant, Gamma: 0.9})
	rep := p.NewReport(res.Matching, nil, 1)
	if rep.Card != res.Matching.Card {
		t.Fatal("report inconsistent")
	}
	if e, ok := p.L.Find(0, 0); ok {
		p2, err := p.RemoveCandidates([]int{e}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p2.L.NumEdges() != p.L.NumEdges()-1 {
			t.Fatal("steering removal failed")
		}
	}
}

func TestPublicAPIObjectiveConsistency(t *testing.T) {
	o := netalignmc.DefaultSynthetic(4, 11)
	o.N = 40
	p, err := netalignmc.NewSyntheticProblem(o)
	if err != nil {
		t.Fatal(err)
	}
	res := p.BPAlign(netalignmc.BPOptions{Iterations: 8})
	if math.Abs(res.Objective-(p.Alpha*res.MatchWeight+p.Beta*res.Overlap)) > 1e-9 {
		t.Fatal("objective decomposition inconsistent")
	}
}

#!/usr/bin/env bash
# End-to-end smoke test of the netalignd job service:
#
#   1. build the daemon and start it on a private port/spool
#   2. submit a small generator job, poll it to done, read the result
#   3. resubmit the identical job and verify it is served from the
#      result cache: admitted already-done, iter=0, cache-hit metric
#      incremented, same objective
#   4. submit a long job, wait for its first checkpoint, kill -9 the
#      daemon mid-run, restart it on the same spool, and verify the
#      job resumes (resumes >= 1) and completes
#
# Needs: curl, python3 (JSON parsing). Run from the repo root.
#
# Environment knobs (so several smoke runs — e.g. this one and the
# cluster smoke — can share a CI host without colliding):
#
#   SMOKE_PORT  listen port            (default 18080)
#   SMOKE_DIR   scratch/spool directory (default mktemp -d; removed on
#               exit only when this script created it)
set -euo pipefail

PORT="${SMOKE_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
if [ -n "${SMOKE_DIR:-}" ]; then
    DIR="$SMOKE_DIR"
    mkdir -p "$DIR"
    KEEP_DIR=1
else
    DIR=$(mktemp -d)
    KEEP_DIR=0
fi
PID=""
cleanup() {
    status=$?
    # On any failure, dump the daemon log before the tempdir vanishes —
    # a CI transcript without it is undebuggable.
    if [ "$status" -ne 0 ] && [ -f "$DIR/daemon.log" ]; then
        echo "== smoke FAILED (exit $status); daemon log:"
        cat "$DIR/daemon.log"
    fi
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    [ "$KEEP_DIR" = 0 ] && rm -rf "$DIR"
    exit "$status"
}
trap cleanup EXIT

echo "== build"
go build -o "$DIR/netalignd" ./cmd/netalignd

start_daemon() {
    "$DIR/netalignd" -addr "$ADDR" -spool "$DIR/spool" -workers 1 \
        -tenant-weights 'team-a=3,team-b=1' -tenant-quota 8 -preempt \
        >>"$DIR/daemon.log" 2>&1 &
    PID=$!
    disown "$PID" 2>/dev/null || true
    for _ in $(seq 1 50); do
        if curl -fs "$BASE/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "netalignd did not become healthy within 10s"
    exit 1
}

# json <expr>: extract a field from the JSON document on stdin,
# e.g. `json "['id']"`.
json() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

poll_state() { # poll_state <id> <want> <attempts>
    local id=$1 want=$2 attempts=$3 state=""
    for _ in $(seq 1 "$attempts"); do
        state=$(curl -fs "$BASE/v1/jobs/$id" | json "['state']")
        [ "$state" = "$want" ] && return 0
        case "$state" in failed|cancelled|numerics)
            echo "job $id ended $state, wanted $want"
            curl -fs "$BASE/v1/jobs/$id" || true
            exit 1 ;;
        esac
        sleep 0.2
    done
    echo "job $id stuck in $state, wanted $want"
    exit 1
}

echo "== start"
start_daemon

echo "== quick job: submit, poll, result"
SPEC='{"method":"bp","iterations":20,"approx":true,"threads":1,
       "generator":{"n":40,"dbar":3,"seed":7}}'
ID=$(curl -fs -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" | json "['id']")
poll_state "$ID" done 100
OBJ=$(curl -fs "$BASE/v1/jobs/$ID/result" | json "['objective']")
echo "   job $ID done, objective $OBJ"

echo "== cache: resubmit the identical job, expect an instant hit"
ID2=$(curl -fs -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" | json "['id']")
STATE2=$(curl -fs "$BASE/v1/jobs/$ID2" | json "['state']")
[ "$STATE2" = done ] || { echo "resubmission $ID2 is $STATE2, want done"; exit 1; }
ITER2=$(curl -fs "$BASE/v1/jobs/$ID2" | json "['iter']")
[ "$ITER2" = 0 ] || { echo "cached job $ID2 ran $ITER2 iterations, want 0"; exit 1; }
HITS=$(curl -fs "$BASE/metrics" | awk '/^netalignd_cache_hits_total/ {print $2}')
[ "${HITS:-0}" -ge 1 ] || { echo "cache_hits_total=$HITS after identical resubmit, want >= 1"; exit 1; }
OBJ2=$(curl -fs "$BASE/v1/jobs/$ID2/result" | json "['objective']")
[ "$OBJ2" = "$OBJ" ] || { echo "cached objective $OBJ2 != original $OBJ"; exit 1; }
echo "   job $ID2 served from cache (hits=$HITS, objective matches)"

echo "== kill/resume: submit long job, kill -9 mid-run, restart"
ID=$(curl -fs -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
    -d '{"method":"bp","iterations":3000,"batch":1,"approx":true,"threads":1,
         "checkpointEvery":2,"generator":{"n":200,"dbar":5,"seed":5}}' | json "['id']")
CKPT="$DIR/spool/$ID/checkpoint.ckpt"
for _ in $(seq 1 100); do
    [ -f "$CKPT" ] && break
    sleep 0.1
done
[ -f "$CKPT" ] || { echo "no checkpoint appeared for $ID"; exit 1; }
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

start_daemon
RESUMES=$(curl -fs "$BASE/v1/jobs/$ID" | json "['resumes']")
[ "$RESUMES" -ge 1 ] || { echo "job $ID has resumes=$RESUMES after crash, want >= 1"; exit 1; }
poll_state "$ID" done 300
STOP=$(curl -fs "$BASE/v1/jobs/$ID/result" | json "['stopped']")
echo "   job $ID resumed (resumes=$RESUMES) and completed, stopped=$STOP"

echo "== metrics"
METRICS=$(curl -fs "$BASE/metrics")
for m in netalignd_jobs_resumed_total netalignd_jobs_retried_total \
         netalignd_jobs_quarantined netalignd_retry_after_seconds; do
    echo "$METRICS" | grep -q "^$m" || { echo "metrics missing $m"; exit 1; }
done

echo "== quarantine listing: filter accepts the state, rejects junk"
curl -fs "$BASE/v1/jobs?state=quarantined" >/dev/null || {
    echo "?state=quarantined rejected"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs?state=bogus")
[ "$CODE" = 400 ] || { echo "?state=bogus returned $CODE, want 400"; exit 1; }

echo "== tenants: two tenants submit; filtered listing and per-tenant metrics"
TA=$(curl -fs -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
    -d '{"method":"bp","iterations":20,"approx":true,"threads":1,
         "tenant":"team-a","class":"interactive",
         "generator":{"n":40,"dbar":3,"seed":101}}' | json "['id']")
TB=$(curl -fs -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' \
    -d '{"method":"bp","iterations":20,"approx":true,"threads":1,
         "tenant":"team-b",
         "generator":{"n":40,"dbar":3,"seed":102}}' | json "['id']")
poll_state "$TA" done 100
poll_state "$TB" done 100
TENANT_A=$(curl -fs "$BASE/v1/jobs/$TA" | json "['tenant']")
[ "$TENANT_A" = team-a ] || { echo "job $TA reports tenant $TENANT_A, want team-a"; exit 1; }
LIST_A=$(curl -fs "$BASE/v1/jobs?tenant=team-a&class=interactive")
echo "$LIST_A" | grep -q "$TA" || { echo "?tenant=team-a&class=interactive missing $TA"; exit 1; }
echo "$LIST_A" | grep -q "$TB" && { echo "?tenant=team-a listing leaked team-b job $TB"; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs?class=bogus")
[ "$CODE" = 400 ] || { echo "?class=bogus returned $CODE, want 400"; exit 1; }
METRICS=$(curl -fs "$BASE/metrics")
for series in 'netalignd_tenant_weight{tenant="team-a"} 3' \
              'netalignd_tenant_jobs_submitted_total{tenant="team-a"}' \
              'netalignd_tenant_jobs_completed_total{tenant="team-b"}'; do
    echo "$METRICS" | grep -qF "$series" || { echo "metrics missing $series"; exit 1; }
done
echo "   tenant filters and per-tenant metrics OK"

echo "smoke OK"

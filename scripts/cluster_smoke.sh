#!/usr/bin/env bash
# End-to-end smoke test of cluster mode: a consistent-hash router in
# front of two netalignd backends.
#
#   1. build netalignd and netalignrouter; start two backends (each
#      with peer cache fill pointed at the other) and the router
#   2. submit a job through the router, poll it to done, read the
#      result objective
#   3. resubmit the identical job through the router and verify cache
#      affinity: both submissions landed on one owner (submitted=2 on
#      exactly one backend), the second was a cache hit there, and the
#      other backend saw nothing
#   4. kill -9 the owner, resubmit through the router, and verify the
#      ring heals: the survivor takes the job (router failover metric
#      increments) and recomputes the identical objective
#
# Needs: curl, python3 (JSON parsing). Run from the repo root.
#
# Environment knobs:
#
#   SMOKE_PORT  first of three consecutive ports: router, backend A,
#               backend B (default 18090)
#   SMOKE_DIR   scratch directory (default mktemp -d)
set -euo pipefail

PORT="${SMOKE_PORT:-18090}"
RADDR="127.0.0.1:$PORT"
AADDR="127.0.0.1:$((PORT + 1))"
BADDR="127.0.0.1:$((PORT + 2))"
ROUTER="http://$RADDR"
NODE_A="http://$AADDR"
NODE_B="http://$BADDR"
if [ -n "${SMOKE_DIR:-}" ]; then
    DIR="$SMOKE_DIR"
    mkdir -p "$DIR"
    KEEP_DIR=1
else
    DIR=$(mktemp -d)
    KEEP_DIR=0
fi
PIDS=""
cleanup() {
    status=$?
    if [ "$status" -ne 0 ]; then
        for log in "$DIR"/*.log; do
            [ -f "$log" ] || continue
            echo "== cluster smoke FAILED (exit $status); $log:"
            cat "$log"
        done
    fi
    for pid in $PIDS; do kill -9 "$pid" 2>/dev/null || true; done
    [ "$KEEP_DIR" = 0 ] && rm -rf "$DIR"
    exit "$status"
}
trap cleanup EXIT

echo "== build"
go build -o "$DIR/netalignd" ./cmd/netalignd
go build -o "$DIR/netalignrouter" ./cmd/netalignrouter

json() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

wait_healthy() { # wait_healthy <base>
    for _ in $(seq 1 50); do
        if curl -fs "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "$1 did not become healthy within 10s"
    exit 1
}

poll_done() { # poll_done <base> <id>
    local state=""
    for _ in $(seq 1 150); do
        state=$(curl -fs "$1/v1/jobs/$2" | json "['state']")
        [ "$state" = done ] && return 0
        case "$state" in failed|cancelled|numerics)
            echo "job $2 ended $state, wanted done"; exit 1 ;;
        esac
        sleep 0.2
    done
    echo "job $2 stuck in $state, wanted done"
    exit 1
}

node_metric() { # node_metric <base> <name> -> value (0 when absent)
    curl -fs "$1/metrics" | awk -v m="$2" '$1 == m {print $2}' | head -1
}

echo "== start: 2 backends + router"
"$DIR/netalignd" -addr "$AADDR" -spool "$DIR/spool-a" -workers 1 \
    -peers "$NODE_A,$NODE_B" -self "$NODE_A" >"$DIR/node-a.log" 2>&1 &
A_PID=$!
PIDS="$PIDS $A_PID"
disown "$A_PID" 2>/dev/null || true
"$DIR/netalignd" -addr "$BADDR" -spool "$DIR/spool-b" -workers 1 \
    -peers "$NODE_A,$NODE_B" -self "$NODE_B" >"$DIR/node-b.log" 2>&1 &
B_PID=$!
PIDS="$PIDS $B_PID"
disown "$B_PID" 2>/dev/null || true
wait_healthy "$NODE_A"
wait_healthy "$NODE_B"
"$DIR/netalignrouter" -addr "$RADDR" -peers "$NODE_A,$NODE_B" \
    >"$DIR/router.log" 2>&1 &
R_PID=$!
PIDS="$PIDS $R_PID"
disown "$R_PID" 2>/dev/null || true
wait_healthy "$ROUTER"

echo "== submit through the router, poll to done"
SPEC='{"method":"bp","iterations":20,"approx":true,"threads":1,
       "generator":{"n":40,"dbar":3,"seed":7}}'
ID=$(curl -fs -X POST "$ROUTER/v1/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" | json "['id']")
poll_done "$ROUTER" "$ID"
OBJ=$(curl -fs "$ROUTER/v1/jobs/$ID/result" | json "['objective']")
echo "   job $ID done via router, objective $OBJ"

echo "== resubmit: cache affinity on the owner"
ID2=$(curl -fs -X POST "$ROUTER/v1/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" | json "['id']")
poll_done "$ROUTER" "$ID2"
SUB_A=$(node_metric "$NODE_A" netalignd_jobs_submitted_total)
SUB_B=$(node_metric "$NODE_B" netalignd_jobs_submitted_total)
if [ "${SUB_A:-0}" = 2 ] && [ "${SUB_B:-0}" = 0 ]; then
    OWNER=$NODE_A; OWNER_PID=$A_PID; OWNER_NAME=A
elif [ "${SUB_B:-0}" = 2 ] && [ "${SUB_A:-0}" = 0 ]; then
    OWNER=$NODE_B; OWNER_PID=$B_PID; OWNER_NAME=B
else
    echo "submissions split across nodes (A=$SUB_A B=$SUB_B), want both on one owner"
    exit 1
fi
HITS=$(node_metric "$OWNER" netalignd_cache_hits_total)
[ "${HITS:-0}" -ge 1 ] || { echo "owner cache hits=$HITS after identical resubmit, want >= 1"; exit 1; }
OBJ2=$(curl -fs "$ROUTER/v1/jobs/$ID2/result" | json "['objective']")
[ "$OBJ2" = "$OBJ" ] || { echo "cached objective $OBJ2 != original $OBJ"; exit 1; }
echo "   owner is node $OWNER_NAME (submitted=2, hits=$HITS); objective matches"

echo "== kill the owner; the ring must heal onto the survivor"
kill -9 "$OWNER_PID"
wait "$OWNER_PID" 2>/dev/null || true
ID3=$(curl -fs -X POST "$ROUTER/v1/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" | json "['id']")
poll_done "$ROUTER" "$ID3"
OBJ3=$(curl -fs "$ROUTER/v1/jobs/$ID3/result" | json "['objective']")
[ "$OBJ3" = "$OBJ" ] || { echo "failover objective $OBJ3 != original $OBJ"; exit 1; }
FAILOVERS=$(node_metric "$ROUTER" netalignrouter_failover_total)
[ "${FAILOVERS:-0}" -ge 1 ] || { echo "router failover_total=$FAILOVERS after owner death, want >= 1"; exit 1; }
READY=$(curl -s -o /dev/null -w '%{http_code}' "$ROUTER/readyz")
[ "$READY" = 200 ] || { echo "router readyz=$READY with one survivor, want 200"; exit 1; }
echo "   job $ID3 rerouted (failovers=$FAILOVERS), objective matches"

echo "cluster smoke OK"

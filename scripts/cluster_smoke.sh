#!/usr/bin/env bash
# End-to-end smoke test of cluster mode: a consistent-hash router in
# front of two netalignd backends.
#
#   1. build netalignd and netalignrouter; start two backends (each
#      with peer cache fill pointed at the other) and the router
#   2. submit a job through the router, poll it to done, read the
#      result objective
#   3. resubmit the identical job through the router and verify cache
#      affinity: both submissions landed on one owner (submitted=2 on
#      exactly one backend), the second was a cache hit there, and the
#      other backend saw nothing
#   4. proactive drain handoff: put a mid-run job plus a queued job on
#      the non-owner, SIGTERM it, and verify both jobs move to the
#      owner (handoff_received >= 2) and complete there; restart the
#      drained node over its spool and verify the local copies are
#      handed_off tombstones that never re-run
#   5. kill -9 the owner, resubmit through the router, and verify the
#      ring heals: the survivor takes the job (router failover metric
#      increments) and recomputes the identical objective
#
# Needs: curl, python3 (JSON parsing). Run from the repo root.
#
# Environment knobs:
#
#   SMOKE_PORT  first of three consecutive ports: router, backend A,
#               backend B (default 18090)
#   SMOKE_DIR   scratch directory (default mktemp -d)
set -euo pipefail

PORT="${SMOKE_PORT:-18090}"
RADDR="127.0.0.1:$PORT"
AADDR="127.0.0.1:$((PORT + 1))"
BADDR="127.0.0.1:$((PORT + 2))"
ROUTER="http://$RADDR"
NODE_A="http://$AADDR"
NODE_B="http://$BADDR"
if [ -n "${SMOKE_DIR:-}" ]; then
    DIR="$SMOKE_DIR"
    mkdir -p "$DIR"
    KEEP_DIR=1
else
    DIR=$(mktemp -d)
    KEEP_DIR=0
fi
PIDS=""
cleanup() {
    status=$?
    if [ "$status" -ne 0 ]; then
        for log in "$DIR"/*.log; do
            [ -f "$log" ] || continue
            echo "== cluster smoke FAILED (exit $status); $log:"
            cat "$log"
        done
    fi
    for pid in $PIDS; do kill -9 "$pid" 2>/dev/null || true; done
    [ "$KEEP_DIR" = 0 ] && rm -rf "$DIR"
    exit "$status"
}
trap cleanup EXIT

echo "== build"
go build -o "$DIR/netalignd" ./cmd/netalignd
go build -o "$DIR/netalignrouter" ./cmd/netalignrouter

json() { python3 -c "import json,sys; print(json.load(sys.stdin)$1)"; }

wait_healthy() { # wait_healthy <base>
    for _ in $(seq 1 50); do
        if curl -fs "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "$1 did not become healthy within 10s"
    exit 1
}

poll_done() { # poll_done <base> <id>
    local state=""
    for _ in $(seq 1 150); do
        # Tolerate transient 404s: a job mid-handoff exists on neither
        # node for a moment.
        state=$(curl -fs "$1/v1/jobs/$2" | json "['state']" 2>/dev/null || true)
        [ "$state" = done ] && return 0
        case "$state" in failed|cancelled|numerics)
            echo "job $2 ended $state, wanted done"; exit 1 ;;
        esac
        sleep 0.2
    done
    echo "job $2 stuck in $state, wanted done"
    exit 1
}

node_metric() { # node_metric <base> <name> -> value (0 when absent)
    curl -fs "$1/metrics" | awk -v m="$2" '$1 == m {print $2}' | head -1
}

echo "== start: 2 backends + router"
"$DIR/netalignd" -addr "$AADDR" -spool "$DIR/spool-a" -workers 1 \
    -peers "$NODE_A,$NODE_B" -self "$NODE_A" >"$DIR/node-a.log" 2>&1 &
A_PID=$!
PIDS="$PIDS $A_PID"
disown "$A_PID" 2>/dev/null || true
"$DIR/netalignd" -addr "$BADDR" -spool "$DIR/spool-b" -workers 1 \
    -peers "$NODE_A,$NODE_B" -self "$NODE_B" >"$DIR/node-b.log" 2>&1 &
B_PID=$!
PIDS="$PIDS $B_PID"
disown "$B_PID" 2>/dev/null || true
wait_healthy "$NODE_A"
wait_healthy "$NODE_B"
"$DIR/netalignrouter" -addr "$RADDR" -peers "$NODE_A,$NODE_B" \
    >"$DIR/router.log" 2>&1 &
R_PID=$!
PIDS="$PIDS $R_PID"
disown "$R_PID" 2>/dev/null || true
wait_healthy "$ROUTER"

echo "== submit through the router, poll to done"
SPEC='{"method":"bp","iterations":20,"approx":true,"threads":1,
       "generator":{"n":40,"dbar":3,"seed":7}}'
ID=$(curl -fs -X POST "$ROUTER/v1/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" | json "['id']")
poll_done "$ROUTER" "$ID"
OBJ=$(curl -fs "$ROUTER/v1/jobs/$ID/result" | json "['objective']")
echo "   job $ID done via router, objective $OBJ"

echo "== resubmit: cache affinity on the owner"
ID2=$(curl -fs -X POST "$ROUTER/v1/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" | json "['id']")
poll_done "$ROUTER" "$ID2"
SUB_A=$(node_metric "$NODE_A" netalignd_jobs_submitted_total)
SUB_B=$(node_metric "$NODE_B" netalignd_jobs_submitted_total)
if [ "${SUB_A:-0}" = 2 ] && [ "${SUB_B:-0}" = 0 ]; then
    OWNER=$NODE_A; OWNER_PID=$A_PID; OWNER_NAME=A
    OTHER=$NODE_B; OTHER_PID=$B_PID; OTHER_NAME=B
    OTHER_ADDR=$BADDR; OTHER_SPOOL="$DIR/spool-b"
elif [ "${SUB_B:-0}" = 2 ] && [ "${SUB_A:-0}" = 0 ]; then
    OWNER=$NODE_B; OWNER_PID=$B_PID; OWNER_NAME=B
    OTHER=$NODE_A; OTHER_PID=$A_PID; OTHER_NAME=A
    OTHER_ADDR=$AADDR; OTHER_SPOOL="$DIR/spool-a"
else
    echo "submissions split across nodes (A=$SUB_A B=$SUB_B), want both on one owner"
    exit 1
fi
HITS=$(node_metric "$OWNER" netalignd_cache_hits_total)
[ "${HITS:-0}" -ge 1 ] || { echo "owner cache hits=$HITS after identical resubmit, want >= 1"; exit 1; }
OBJ2=$(curl -fs "$ROUTER/v1/jobs/$ID2/result" | json "['objective']")
[ "$OBJ2" = "$OBJ" ] || { echo "cached objective $OBJ2 != original $OBJ"; exit 1; }
echo "   owner is node $OWNER_NAME (submitted=2, hits=$HITS); objective matches"

echo "== drain node $OTHER_NAME with work in flight; jobs must move to node $OWNER_NAME"
# A mid-run checkpointing job occupies the single worker; a quick job
# queues behind it. SIGTERM then drains: both export to the peer.
LONG_SPEC='{"method":"bp","iterations":3000,"batch":1,"approx":true,"threads":1,
            "progressEvery":1,"checkpointEvery":5,
            "generator":{"n":120,"dbar":4,"seed":21}}'
QUEUED_SPEC='{"method":"bp","iterations":20,"approx":true,"threads":1,
              "generator":{"n":40,"dbar":3,"seed":8}}'
XID=$(curl -fs -X POST "$OTHER/v1/jobs" -H 'Content-Type: application/json' \
    -d "$LONG_SPEC" | json "['id']")
YID=$(curl -fs -X POST "$OTHER/v1/jobs" -H 'Content-Type: application/json' \
    -d "$QUEUED_SPEC" | json "['id']")
kill -TERM "$OTHER_PID"
wait "$OTHER_PID" 2>/dev/null || true
poll_done "$OWNER" "$XID"
poll_done "$OWNER" "$YID"
RECEIVED=$(node_metric "$OWNER" netalignd_handoff_received_total)
[ "${RECEIVED:-0}" -ge 2 ] || { echo "owner handoff_received_total=$RECEIVED after drain, want >= 2"; exit 1; }
echo "   jobs $XID, $YID completed on node $OWNER_NAME (handoff_received=$RECEIVED)"

echo "== restart node $OTHER_NAME; handed-off jobs must stay tombstones"
"$DIR/netalignd" -addr "$OTHER_ADDR" -spool "$OTHER_SPOOL" -workers 1 \
    -peers "$NODE_A,$NODE_B" -self "$OTHER" >"$DIR/node-$OTHER_NAME-restart.log" 2>&1 &
OTHER_PID=$!
PIDS="$PIDS $OTHER_PID"
disown "$OTHER_PID" 2>/dev/null || true
wait_healthy "$OTHER"
XSTATE=$(curl -fs "$OTHER/v1/jobs/$XID" | json "['state']")
[ "$XSTATE" = handed_off ] || { echo "restarted node shows job $XID as $XSTATE, want handed_off"; exit 1; }
DEPTH=$(node_metric "$OTHER" netalignd_queue_depth)
[ "${DEPTH:-0}" = 0 ] || { echo "restarted node queue_depth=$DEPTH, want 0 (tombstones must not requeue)"; exit 1; }
# Give the router time to re-admit the restarted node to the ring
# before the failover phase below depends on it.
for _ in $(seq 1 50); do
    UP=$(curl -fs "$ROUTER/metrics" | grep -F "netalignrouter_node_up{node=\"$OTHER\"}" | awk '{print $2}')
    [ "${UP:-0}" = 1 ] && break
    sleep 0.2
done
# A read through the router must never surface the tombstone: the
# router either resolves the live copy directly or follows the
# handed_off status one hop to the node that admitted the job.
RSTATE=$(curl -fs "$ROUTER/v1/jobs/$XID" | json "['state']")
[ "$RSTATE" = done ] || { echo "router shows job $XID as $RSTATE, want done (tombstone must be followed)"; exit 1; }
XOBJ=$(curl -fs "$ROUTER/v1/jobs/$XID/result" | json "['objective']")
[ -n "$XOBJ" ] || { echo "router result read for $XID failed after tombstone follow"; exit 1; }
echo "   job $XID is handed_off on the restarted node; queue empty; router serves done"

echo "== kill the owner; the ring must heal onto the survivor"
kill -9 "$OWNER_PID"
wait "$OWNER_PID" 2>/dev/null || true
ID3=$(curl -fs -X POST "$ROUTER/v1/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" | json "['id']")
poll_done "$ROUTER" "$ID3"
OBJ3=$(curl -fs "$ROUTER/v1/jobs/$ID3/result" | json "['objective']")
[ "$OBJ3" = "$OBJ" ] || { echo "failover objective $OBJ3 != original $OBJ"; exit 1; }
FAILOVERS=$(node_metric "$ROUTER" netalignrouter_failover_total)
[ "${FAILOVERS:-0}" -ge 1 ] || { echo "router failover_total=$FAILOVERS after owner death, want >= 1"; exit 1; }
READY=$(curl -s -o /dev/null -w '%{http_code}' "$ROUTER/readyz")
[ "$READY" = 200 ] || { echo "router readyz=$READY with one survivor, want 200"; exit 1; }
echo "   job $ID3 rerouted (failovers=$FAILOVERS), objective matches"

echo "cluster smoke OK"

#!/usr/bin/env bash
# Run the benchalign perf harness on the paper's fig. 2 configurations
# and append the results to a BENCH_*.json document at the repo root.
#
# Usage:
#   scripts/bench.sh [label] [out.json]
#
#   label     label recorded on each run entry (default: dev)
#   out.json  document to append to (default: BENCH_dev.json, or
#             BENCH_<label>.json when a label is given)
#
# Environment:
#   THREADS   comma-separated thread counts   (default: 1,8)
#   ITERS     solver iterations per run       (default: 40)
#   REPS      repetitions, fastest reported   (default: 3)
#   CONFIGS   space-separated config names    (default: "fig2-bp fig2-mr")
#   PIPELINE  when non-empty, run with -pipeline (pipelined rounding;
#             bit-identical, so objectives must match barrier runs)
#   CHECK     when non-empty, also gate allocs/iter against the
#             $BASELINE_LABEL-labeled entries (default "baseline") of
#             $CHECK_DOC (default: the output document), with ratio
#             limit $MAX_ALLOC_RATIO (default 1.2)
#
# Examples:
#   scripts/bench.sh                       # quick dev run
#   scripts/bench.sh pr3 BENCH_pr3.json    # record a PR's runs
#   CHECK=1 scripts/bench.sh ci BENCH_ci.json
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-dev}"
OUT="${2:-BENCH_${LABEL}.json}"
THREADS="${THREADS:-1,8}"
ITERS="${ITERS:-40}"
REPS="${REPS:-3}"
CONFIGS="${CONFIGS:-fig2-bp fig2-mr}"
MAX_ALLOC_RATIO="${MAX_ALLOC_RATIO:-1.2}"
BASELINE_LABEL="${BASELINE_LABEL:-baseline}"
CHECK_DOC="${CHECK_DOC:-$OUT}"

BIN="$(mktemp -d)/benchalign"
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/benchalign

for cfg in $CONFIGS; do
    "$BIN" -config "$cfg" -threads "$THREADS" -iters "$ITERS" -reps "$REPS" \
        ${PIPELINE:+-pipeline} -label "$LABEL" -out "$OUT"
done

if [ -n "${CHECK:-}" ]; then
    for cfg in $CONFIGS; do
        "$BIN" -config "$cfg" -threads "$THREADS" -iters "$ITERS" -reps 1 \
            ${PIPELINE:+-pipeline} -check "$CHECK_DOC" -baseline-label "$BASELINE_LABEL" \
            -max-alloc-ratio "$MAX_ALLOC_RATIO"
    done
fi

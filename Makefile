# netalignmc build and reproduction targets.

GO ?= go

.PHONY: all build test race bench bench-go cover vet faults chaos fuzz examples reproduce serve smoke cluster-smoke clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection and resilience suite under the race detector:
# worker panics, cancellation, NaN injection at every solver step,
# malformed inputs.
faults:
	$(GO) test -race -run Fault ./...

# I/O chaos harness + self-healing lifecycle suite: one-shot and
# persistent injected faults (EIO/ENOSPC/short write) at every
# registered fault point, retry/quarantine/requeue arcs, the stall
# watchdog, and pressure-driven load shedding — under the race
# detector with real parallelism.
chaos:
	GOMAXPROCS=4 $(GO) test -race -run 'TestChaos|TestRetry|TestQuarantine|TestCrashLoop|TestWatchProgress|TestStall|TestPressure|TestCheckpointFault' ./internal/server/ ./internal/faults/

# Brief fuzzing of the three file-format readers (the seed corpora
# also run as part of every plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzReadSMAT -fuzztime=10s ./internal/problemio/
	$(GO) test -fuzz=FuzzReadMTX -fuzztime=10s ./internal/problemio/
	$(GO) test -fuzz=FuzzReadCheckpoint -fuzztime=10s ./internal/problemio/

# Perf harness: measure the fig. 2 configurations with cmd/benchalign
# and append machine-readable runs to BENCH_dev.json (see scripts/bench.sh
# for the LABEL/THREADS/ITERS/CHECK knobs).
bench:
	./scripts/bench.sh

# Go microbenchmarks (testing.B) across all packages.
bench-go:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/subgraph
	$(GO) run ./examples/ppi
	$(GO) run ./examples/ontology
	$(GO) run ./examples/steering
	$(GO) run ./examples/matchers

# Run the alignment job service locally (spool in ./netalignd-spool).
serve:
	$(GO) run ./cmd/netalignd -addr :7070 -spool netalignd-spool

# End-to-end daemon smoke test: submit, poll, kill -9 mid-job, verify
# resume-on-restart. Needs curl and python3.
smoke:
	./scripts/ci_smoke.sh

# End-to-end cluster smoke test: router + 2 backends, cache affinity on
# the owner, kill the owner and verify ring failover. Needs curl and
# python3.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Regenerate the full experiment report (results/report.md).
reproduce:
	mkdir -p results
	$(GO) run ./cmd/experiments -scale 0.02 -iters 30 -report results/report.md

clean:
	$(GO) clean ./...

# netalignmc build and reproduction targets.

GO ?= go

.PHONY: all build test race bench cover vet examples reproduce clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/subgraph
	$(GO) run ./examples/ppi
	$(GO) run ./examples/ontology
	$(GO) run ./examples/steering
	$(GO) run ./examples/matchers

# Regenerate the full experiment report (results/report.md).
reproduce:
	mkdir -p results
	$(GO) run ./cmd/experiments -scale 0.02 -iters 30 -report results/report.md

clean:
	$(GO) clean ./...

// Package netalignmc is a multithreaded network alignment library,
// reproducing "A multithreaded algorithm for network alignment via
// approximate matching" (Khan, Gleich, Pothen, Halappanavar; SC 2012).
//
// Network alignment: given undirected graphs A and B and a weighted
// bipartite candidate graph L between their vertex sets, find a
// matching in L maximizing α·(matched weight) + β·(overlapped edges).
// The package provides the two iterative heuristics the paper studies
// — Klau's matching relaxation (MR) and belief propagation (BP) — with
// a pluggable rounding step: either exact maximum-weight bipartite
// matching or the parallel locally-dominant half-approximation whose
// substitution is the paper's contribution.
//
// Quick start:
//
//	a := netalignmc.NewGraphBuilder(3)
//	a.AddEdge(0, 1)
//	a.AddEdge(1, 2)
//	ga := a.Build()
//	// ... build gb and the candidate graph l similarly ...
//	p, err := netalignmc.NewProblem(ga, gb, l, 1, 2)
//	if err != nil { ... }
//	res := p.BPAlign(netalignmc.BPOptions{
//		Iterations: 100,
//		Rounding:   netalignmc.ApproxMatcher, // parallel half-approx rounding
//	})
//	fmt.Println(res.Objective, res.Matching.MateA)
//
// The subpackages under internal implement the substrates (CSR graphs
// and sparse matrices, the matching algorithms, problem generators and
// the experiment harness); this package is the supported API surface.
package netalignmc

import (
	"io"

	"netalignmc/internal/bipartite"
	"netalignmc/internal/core"
	"netalignmc/internal/gen"
	"netalignmc/internal/graph"
	"netalignmc/internal/matching"
	"netalignmc/internal/parallel"
	"netalignmc/internal/problemio"
	"netalignmc/internal/stats"
)

// Graph is an immutable undirected graph in CSR form (A and B inputs).
type Graph = graph.Graph

// GraphEdge is an undirected edge.
type GraphEdge = graph.Edge

// GraphBuilder accumulates edges for a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for an n-vertex undirected graph.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphFromEdges builds an n-vertex graph from an edge list.
func GraphFromEdges(n int, edges []GraphEdge) *Graph { return graph.FromEdges(n, edges) }

// CandidateGraph is the weighted bipartite graph L of candidate
// vertex pairs.
type CandidateGraph = bipartite.Graph

// CandidateEdge is one weighted candidate pair (a ∈ V_A, b ∈ V_B).
type CandidateEdge = bipartite.WeightedEdge

// NewCandidateGraph builds L from an edge list; duplicate pairs keep
// their maximum weight.
func NewCandidateGraph(na, nb int, edges []CandidateEdge) (*CandidateGraph, error) {
	return bipartite.New(na, nb, edges)
}

// Problem is a network alignment instance with its derived overlap
// matrix S. Alignment methods are methods on Problem: KlauAlign (MR)
// and BPAlign.
type Problem = core.Problem

// NewProblem assembles a problem and builds the overlap matrix S using
// all available cores.
func NewProblem(a, b *Graph, l *CandidateGraph, alpha, beta float64) (*Problem, error) {
	return core.NewProblem(a, b, l, alpha, beta, 0)
}

// Method selects the alignment algorithm for Problem.Align.
type Method = core.Method

// Methods for Options.Method.
const (
	MethodBP = core.MethodBP
	MethodMR = core.MethodMR
)

// Options configures Problem.Align, the unified context-first entry
// point; the method-specific wrappers (BPAlign, KlauAlign, BPAlignCtx,
// MRAlignCtx) are deprecated thin wrappers over it:
//
//	res, err := p.Align(ctx, netalignmc.Options{
//		Method: netalignmc.MethodBP,
//		BP: netalignmc.BPOptions{
//			Iterations: 100,
//			Matcher:    netalignmc.MatcherSpec{Name: "approx"},
//		},
//	})
type Options = core.Options

// Workspace is an arena of reusable solver buffers; pass one via
// BPOptions/MROptions.Workspace to make steady-state iterations and
// warm re-solves allocation-free. One workspace serves one solve at a
// time.
type Workspace = core.Workspace

// NewWorkspace returns an empty workspace, sized on first use.
func NewWorkspace() *Workspace { return core.NewWorkspace() }

// MROptions configures Klau's matching relaxation; see the fields'
// documentation in internal/core.
type MROptions = core.MROptions

// BPOptions configures the belief propagation method.
type BPOptions = core.BPOptions

// AlignResult is the outcome of an alignment method.
type AlignResult = core.AlignResult

// StopReason records why an alignment run ended; see AlignResult.Stopped.
type StopReason = core.StopReason

// Stop reasons.
const (
	StopMaxIter   = core.StopMaxIter
	StopConverged = core.StopConverged
	StopCancelled = core.StopCancelled
	StopDeadline  = core.StopDeadline
	StopNumerics  = core.StopNumerics
)

// Checkpoint is a serializable snapshot of a BP or MR run; produce one
// via BPOptions/MROptions.CheckpointEvery + CheckpointFunc, serialize
// it with WriteCheckpoint, and feed it back through the Resume option
// to continue the run bit for bit. Problem.BPAlignCtx and
// Problem.MRAlignCtx accept a context.Context for cancellation and
// deadlines.
type Checkpoint = core.Checkpoint

// FaultInjector corrupts solver state at named steps; used by the
// fault-injection tests, exported so downstream robustness harnesses
// can reuse the hook.
type FaultInjector = core.FaultInjector

// Matching is a bipartite matching result (mates per side, weight,
// cardinality).
type Matching = matching.Result

// Matcher computes a matching of a candidate graph; alignment methods
// accept any Matcher for their rounding step.
type Matcher = matching.Matcher

// MatcherSpec declaratively selects and parameterizes a rounding
// matcher ("exact", "approx", "suitor", "greedy", "locally-dominant",
// "path-growing", "auction"); it marshals to/from text ("suitor",
// "locally-dominant(sorted=true)", "auction(eps=0.01)"), so it travels
// through flags, JSON job specs and config files. The zero value is
// exact matching. Prefer it over raw Matcher funcs in BPOptions and
// MROptions: the solvers build reusable (allocation-free) matcher
// state from a spec, which they cannot do for an opaque func.
type MatcherSpec = matching.MatcherSpec

// ParseMatcherSpec parses a matcher spec string.
func ParseMatcherSpec(text string) (MatcherSpec, error) {
	return matching.ParseMatcherSpec(text)
}

// MatcherNames lists the recognized MatcherSpec names.
func MatcherNames() []string { return matching.MatcherNames() }

// LocallyDominantOptions configures the parallel approximate matcher.
type LocallyDominantOptions = matching.LocallyDominantOptions

// The built-in matchers:
var (
	// ExactMatcher computes a maximum-weight bipartite matching by
	// successive shortest augmenting paths (serial).
	ExactMatcher Matcher = matching.Exact
	// ApproxMatcher is the parallel locally-dominant half-approximate
	// matcher with the bipartite one-sided initialization — the
	// configuration the paper's experiments use.
	ApproxMatcher Matcher = matching.Approx
	// GreedyMatcher is the serial sorted-greedy half-approximation.
	GreedyMatcher Matcher = matching.Greedy
)

// NewLocallyDominantMatcher builds an approximate matcher with custom
// options (initialization variant, chunk size).
func NewLocallyDominantMatcher(opts LocallyDominantOptions) Matcher {
	return matching.NewLocallyDominantMatcher(opts)
}

// SuitorMatcher is the Suitor half-approximate matcher (Manne and
// Halappanavar), the successor to the locally-dominant algorithm; for
// distinct weights it computes the same matching.
var SuitorMatcher Matcher = matching.Suitor

// PathGrowingMatcher is the Drake–Hougardy path-growing
// half-approximation (serial, no global sort).
var PathGrowingMatcher Matcher = matching.PathGrowing

// NewAuctionMatcher builds a Bertsekas auction matcher whose result is
// within n·eps of the optimal weight.
func NewAuctionMatcher(eps float64) Matcher { return matching.NewAuctionMatcher(eps) }

// HopcroftKarp computes a maximum-cardinality matching (weights
// ignored), optionally warm-started from a prior matching.
func HopcroftKarp(g *CandidateGraph, warmStart *Matching) *Matching {
	return matching.HopcroftKarp(g, warmStart)
}

// Damping selects the BP damping scheme.
type Damping = core.Damping

// Damping schemes for BPOptions.Damp.
const (
	DampPower    = core.DampPower
	DampConstant = core.DampConstant
	DampNone     = core.DampNone
)

// BaselineKind selects a baseline heuristic for Problem.BaselineAlign.
type BaselineKind = core.BaselineKind

// Baseline kinds.
const (
	BaselineRoundWeights = core.BaselineRoundWeights
	BaselineIsoRank      = core.BaselineIsoRank
	BaselineNSD          = core.BaselineNSD
)

// BaselineOptions configures Problem.BaselineAlign.
type BaselineOptions = core.BaselineOptions

// Report summarizes an alignment (objective decomposition, overlap
// pairs, precision/recall against a reference); see Problem.NewReport.
type Report = core.Report

// LPRelaxationResult is the solved LP relaxation of the MILP
// formulation; see Problem.LPRelaxation.
type LPRelaxationResult = core.LPRelaxationResult

// TrafficModel is the analytical per-iteration memory-traffic model of
// the BP iteration; see core.NewTrafficModel.
type TrafficModel = core.TrafficModel

// NewTrafficModel builds the BP memory-traffic model for a problem and
// rounding batch size.
func NewTrafficModel(p *Problem, batch int) TrafficModel { return core.NewTrafficModel(p, batch) }

// WriteMatching writes an alignment as "a b" pairs.
func WriteMatching(w io.Writer, r *Matching) error { return problemio.WriteMatching(w, r) }

// ReadMatching reads pairs written by WriteMatching for the given
// candidate graph.
func ReadMatching(r io.Reader, l *CandidateGraph) (*Matching, error) {
	return problemio.ReadMatching(r, l)
}

// StepTimer accumulates per-step wall time for the alignment methods;
// pass one via MROptions.Timer or BPOptions.Timer.
type StepTimer = stats.StepTimer

// NewStepTimer returns an empty step timer.
func NewStepTimer() *StepTimer { return stats.NewStepTimer() }

// Schedule selects the loop scheduling policy for the S-indexed
// parallel loops (Dynamic is the paper's tuned default).
type Schedule = parallel.Schedule

// Scheduling policies.
const (
	ScheduleDynamic = parallel.Dynamic
	ScheduleStatic  = parallel.Static
	ScheduleGuided  = parallel.Guided
)

// SyntheticOptions parameterizes the paper's synthetic power-law
// problems (Section VI-A).
type SyntheticOptions = gen.SyntheticOptions

// DefaultSynthetic returns the paper's Figure 2 configuration for a
// given expected candidate degree and seed.
func DefaultSynthetic(expectedDegree float64, seed int64) SyntheticOptions {
	return gen.DefaultSynthetic(expectedDegree, seed)
}

// NewSyntheticProblem builds a synthetic power-law problem with a
// planted identity alignment.
func NewSyntheticProblem(o SyntheticOptions) (*Problem, error) { return gen.Synthetic(o) }

// StandInOptions parameterizes a synthetic stand-in for the paper's
// real datasets (two power-law graphs sharing a planted subgraph).
type StandInOptions = gen.StandInOptions

// NewStandInProblem builds a real-dataset stand-in.
func NewStandInProblem(o StandInOptions) (*Problem, error) { return gen.StandIn(o) }

// Named Table II stand-ins at a scale in (0, 1].
var (
	DmelaScere = gen.DmelaScere
	HomoMusm   = gen.HomoMusm
	LcshWiki   = gen.LcshWiki
	LcshRameau = gen.LcshRameau
)

// CorrectMatchFraction reports the fraction of A-vertices a matching
// maps to their like-numbered B counterpart (the planted alignment of
// the synthetic problems).
func CorrectMatchFraction(r *Matching) float64 { return core.CorrectMatchFraction(r) }

// ProblemStats summarizes a problem as in the paper's Table II.
type ProblemStats = core.Stats

// StatsOf collects Table II statistics.
func StatsOf(name string, p *Problem) ProblemStats { return core.ProblemStats(name, p) }

// WriteCheckpoint serializes a checkpoint in the exact (hexadecimal
// float) text format; resume from it reproduces the run bit for bit.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error { return problemio.WriteCheckpoint(w, c) }

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) { return problemio.ReadCheckpoint(r) }

// WriteCheckpointFile writes a checkpoint atomically (temp file +
// rename), so an interruption never leaves a truncated checkpoint.
func WriteCheckpointFile(path string, c *Checkpoint) error {
	return problemio.WriteCheckpointFile(path, c)
}

// ReadCheckpointFile reads a checkpoint from a file.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	return problemio.ReadCheckpointFile(path)
}

// ReadProblem parses a problem from the netalign text format.
func ReadProblem(r io.Reader) (*Problem, error) { return problemio.Read(r, 0) }

// WriteProblem serializes a problem to the netalign text format.
func WriteProblem(w io.Writer, p *Problem) error { return problemio.Write(w, p) }

// ReadSMATProblem assembles a problem from three SMAT readers (graphs
// A and B as symmetric adjacency matrices, L as a |V_A|x|V_B| weight
// matrix), the data layout of the original netalignmc release.
func ReadSMATProblem(a, b, l io.Reader, alpha, beta float64) (*Problem, error) {
	return problemio.ReadSMATProblem(a, b, l, alpha, beta, 0)
}

// WriteGraphSMAT writes a graph's adjacency matrix in SMAT form.
func WriteGraphSMAT(w io.Writer, g *Graph) error { return problemio.WriteGraphSMAT(w, g) }

// WriteCandidateSMAT writes the candidate graph L in SMAT form.
func WriteCandidateSMAT(w io.Writer, l *CandidateGraph) error { return problemio.WriteLSMAT(w, l) }

// WeightedGraph pairs an undirected general graph with edge weights,
// the input of the general-graph locally-dominant matcher.
type WeightedGraph = matching.WeightedGraph

// NewWeightedGraph builds a weighted general graph from explicit edge
// weights.
func NewWeightedGraph(g *Graph, weights map[GraphEdge]float64) (*WeightedGraph, error) {
	return matching.NewWeightedGraph(g, weights)
}

// LocallyDominantGeneral runs the parallel half-approximate matcher on
// a general (non-bipartite) weighted graph, returning the mate array
// and matched weight.
func LocallyDominantGeneral(g *WeightedGraph, threads int) (mate []int, weight float64) {
	return matching.LocallyDominantGeneral(g, threads)
}

// SuitorGeneral runs the Suitor half-approximate matcher on a general
// weighted graph.
func SuitorGeneral(g *WeightedGraph, threads int) (mate []int, weight float64) {
	return matching.SuitorGeneral(g, threads)
}

// GreedyGeneral runs the serial sorted-greedy half-approximation on a
// general weighted graph.
func GreedyGeneral(g *WeightedGraph) (mate []int, weight float64) {
	return matching.GreedyGeneral(g)
}

// MaxCardinalityGeneral computes a maximum-cardinality matching on a
// general graph with Edmonds' blossom algorithm (weights ignored).
func MaxCardinalityGeneral(g *Graph) (mate []int, card int) {
	return matching.MaxCardinalityGeneral(g)
}
